// Package kmeans implements Lloyd's algorithm with k-means++ seeding for
// points in the plane. It is the dimensionality-reduction substrate of
// Sec. 5.3.1 of the paper: for collectives of more than ~60 particles the
// per-particle observer variables are replaced by l·k cluster-mean
// variables, one k-means per particle type.
package kmeans

import (
	"fmt"
	"math"

	"repro/internal/rngx"
	"repro/internal/vec"
)

// Result describes a clustering.
type Result struct {
	// Centroids are the k cluster centres.
	Centroids []vec.Vec2
	// Assign[i] is the cluster index of input point i.
	Assign []int
	// SSE is the within-cluster sum of squared distances (the k-means
	// objective) at convergence.
	SSE float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Options configures Cluster.
type Options struct {
	// MaxIterations bounds the Lloyd loop; 0 means the default (100).
	MaxIterations int
	// Tolerance stops when the SSE improves by less than this between
	// iterations; 0 means the default (1e-10).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	return o
}

// Cluster partitions points into k clusters. k must satisfy
// 1 ≤ k ≤ len(points). Seeding is k-means++ (squared-distance-proportional
// sampling) driven by rng, so results are deterministic for a fixed stream.
func Cluster(points []vec.Vec2, k int, rng rngx.Source, opt Options) (Result, error) {
	n := len(points)
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("kmeans: k=%d out of range [1,%d]", k, n)
	}
	opt = opt.withDefaults()

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]vec.Vec2, k)

	prevSSE := math.Inf(1)
	iters := 0
	var sse float64
	for ; iters < opt.MaxIterations; iters++ {
		// Assignment step.
		sse = 0
		for i, p := range points {
			best, bestD2 := 0, p.Dist2(centroids[0])
			for c := 1; c < k; c++ {
				if d2 := p.Dist2(centroids[c]); d2 < bestD2 {
					best, bestD2 = c, d2
				}
			}
			assign[i] = best
			sse += bestD2
		}
		if prevSSE-sse < opt.Tolerance {
			iters++
			break
		}
		prevSSE = sse
		// Update step.
		for c := range sums {
			sums[c] = vec.Vec2{}
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			sums[c] = sums[c].Add(p)
			counts[c]++
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: re-seed on the point farthest
				// from its centroid, a standard repair that
				// keeps k clusters alive.
				centroids[c] = farthestPoint(points, centroids, assign)
				continue
			}
			centroids[c] = sums[c].Scale(1 / float64(counts[c]))
		}
	}
	return Result{Centroids: centroids, Assign: assign, SSE: sse, Iterations: iters}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ scheme: the
// first uniformly, each subsequent one with probability proportional to its
// squared distance to the nearest centroid chosen so far.
func seedPlusPlus(points []vec.Vec2, k int, rng rngx.Source) []vec.Vec2 {
	n := len(points)
	centroids := make([]vec.Vec2, 0, k)
	centroids = append(centroids, points[rng.IntN(n)])
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		last := centroids[len(centroids)-1]
		for i, p := range points {
			nd := p.Dist2(last)
			if len(centroids) == 1 || nd < d2[i] {
				d2[i] = nd
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with a centroid; any
			// choice is equivalent.
			centroids = append(centroids, points[rng.IntN(n)])
			continue
		}
		target := rng.Float64() * total
		var acc float64
		pick := n - 1
		for i, w := range d2 {
			acc += w
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick])
	}
	return centroids
}

func farthestPoint(points []vec.Vec2, centroids []vec.Vec2, assign []int) vec.Vec2 {
	best, bestD2 := 0, -1.0
	for i, p := range points {
		if d2 := p.Dist2(centroids[assign[i]]); d2 > bestD2 {
			best, bestD2 = i, d2
		}
	}
	return points[best]
}

// PartitionByType clusters the particles of each type separately and
// returns, per type t, the list of particle-index groups (k groups per
// type, some possibly smaller when a type has fewer than k members — then
// min(k, count) groups are used). typeOf[i] gives particle i's type; l is
// the number of types. This realises the paper's "k-means clustering on the
// particles of each type" on a chosen anchor frame; the groups are then
// held fixed across samples so that the reduced mean variables are
// consistent observers (see internal/observer).
func PartitionByType(points []vec.Vec2, typeOf []int, l, k int, rng rngx.Source) ([][][]int, error) {
	if len(points) != len(typeOf) {
		return nil, fmt.Errorf("kmeans: %d points, %d types", len(points), len(typeOf))
	}
	members := make([][]int, l)
	for i, t := range typeOf {
		if t < 0 || t >= l {
			return nil, fmt.Errorf("kmeans: particle %d has type %d, want [0,%d)", i, t, l)
		}
		members[t] = append(members[t], i)
	}
	groups := make([][][]int, l)
	for t := 0; t < l; t++ {
		if len(members[t]) == 0 {
			continue
		}
		kt := k
		if kt > len(members[t]) {
			kt = len(members[t])
		}
		pts := make([]vec.Vec2, len(members[t]))
		for j, i := range members[t] {
			pts[j] = points[i]
		}
		res, err := Cluster(pts, kt, rng, Options{})
		if err != nil {
			return nil, err
		}
		byCluster := make([][]int, kt)
		for j, c := range res.Assign {
			byCluster[c] = append(byCluster[c], members[t][j])
		}
		// Drop empty groups (possible only via the empty-cluster
		// repair path racing the final assignment).
		for _, g := range byCluster {
			if len(g) > 0 {
				groups[t] = append(groups[t], g)
			}
		}
	}
	return groups, nil
}
