// Package spec defines the one declarative description of an experiment
// that every entry point — library sessions, the four CLIs, and any
// future server — produces and consumes: a versioned, JSON-round-trippable
// Spec covering the simulation (force family and matrices, particle count
// and types, cut-off), the ensemble grid (M, steps, recording, seed), the
// observer reduction, the estimator, a scale preset, and an optional sweep
// grid, with a single Validate() that reports every problem as a typed
// *SpecError and a stable fingerprint that keys checkpoints.
//
// A Spec is data, not behaviour: building one never runs anything, and
// the runtime knobs that can never change a result (worker counts,
// budgets) are carried for convenience but excluded from the fingerprint.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"

	"repro/internal/align"
	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/observer"
	"repro/internal/sim"
)

// Version is the current spec schema version. Loaders accept any version
// up to this one; field additions are backward-compatible (absent fields
// keep their zero meaning) and bump the version only when semantics
// change.
const Version = 1

// Spec is the complete declarative description of one experiment: a
// single measurement run (Sim + Ensemble), a named scenario from the
// sweep registry (Scenario), or a custom sweep grid (Sim + Sweep).
type Spec struct {
	// Version is the schema version; 0 is read as the current Version.
	Version int `json:"version"`
	// Name labels the experiment in records, figures and checkpoints.
	Name string `json:"name,omitempty"`
	// Scenario selects a named sweep family from the registry
	// (fig4/fig8/fig9/fig10/rings/cell-adhesion/long-range). Mutually
	// exclusive with Sim and the Sweep grid fields.
	Scenario string `json:"scenario,omitempty"`
	// Scale names an ensemble-size preset ("quick", "paper", "test");
	// empty applies no preset. Explicit Ensemble fields and
	// Sweep.Repeats override the preset field by field.
	Scale string `json:"scale,omitempty"`
	// Seed is the master seed: the ensemble seed of a single run, or the
	// root of every rngx.Split sub-stream of a scenario or grid sweep.
	Seed uint64 `json:"seed,omitempty"`

	Sim       *Sim       `json:"sim,omitempty"`
	Ensemble  *Ensemble  `json:"ensemble,omitempty"`
	Observer  *Observer  `json:"observer,omitempty"`
	Estimator *Estimator `json:"estimator,omitempty"`
	Sweep     *Sweep     `json:"sweep,omitempty"`
}

// Sim describes one simulation configuration. It mirrors sim.Config with
// JSON-safe conventions: Cutoff ≤ 0 or omitted means rc = ∞ (JSON has no
// infinity literal), omitted numeric fields take the simulator defaults,
// and the force is the serialisable forces.Spec.
type Sim struct {
	N int `json:"n"`
	// Types assigns each particle a type; omitted means round-robin over
	// the force's type count.
	Types []int `json:"types,omitempty"`
	// Force is required for single runs; grid sweeps omit it (each cell
	// draws its own from Sweep.Force).
	Force *forces.Spec `json:"force,omitempty"`
	// Cutoff ≤ 0 or omitted means rc = ∞.
	Cutoff               float64 `json:"cutoff,omitempty"`
	Dt                   float64 `json:"dt,omitempty"`
	NoiseVariance        float64 `json:"noiseVariance,omitempty"`
	InitRadius           float64 `json:"initRadius,omitempty"`
	EquilibriumThreshold float64 `json:"equilibriumThreshold,omitempty"`
	EquilibriumWindow    int     `json:"equilibriumWindow,omitempty"`
	// Workers is the per-step force parallelism (runtime only; excluded
	// from the fingerprint — see sim.Config.Workers for the serial-vs-
	// sharded rounding caveat).
	Workers int `json:"workers,omitempty"`
}

// Ensemble describes the experiment ensemble. Zero fields inherit the
// scale preset.
type Ensemble struct {
	M           int `json:"m,omitempty"`
	Steps       int `json:"steps,omitempty"`
	RecordEvery int `json:"recordEvery,omitempty"`
	// Retain keeps the raw trajectories in the result (snapshot figures,
	// trajectory analyses); off by default — the pipeline then streams
	// with bounded memory.
	Retain bool `json:"retain,omitempty"`
	// Workers is the sample-level simulation parallelism (runtime only;
	// excluded from the fingerprint).
	Workers int `json:"workers,omitempty"`
}

// Observer describes the alignment and reduction stage.
type Observer struct {
	// KMeansK > 0 enables the Sec. 5.3.1 k-means mean-variable reduction.
	KMeansK int `json:"kmeansK,omitempty"`
	// Seed drives the k-means seeding.
	Seed uint64 `json:"seed,omitempty"`
	// SkipAlign bypasses the ICP alignment (ablation knob).
	SkipAlign bool `json:"skipAlign,omitempty"`
	// Reference selects the alignment anchor: "" or "first" (streaming),
	// or "medoid" (batch path).
	Reference string `json:"reference,omitempty"`
}

// Estimator describes the multi-information estimation stage.
type Estimator struct {
	// Kind is one of experiment.ValidEstimators (empty = the default
	// corrected KSG-2).
	Kind string `json:"kind,omitempty"`
	// K is the k-NN parameter of the KSG kinds (0 = the paper's 4).
	K int `json:"k,omitempty"`
	// Bins is the per-dimension bin count of the binned kind.
	Bins int `json:"bins,omitempty"`
	// Tier selects the estimator tier: "exact" (or omitted, the default —
	// absent tiers keep legacy fingerprints byte-identical) or "approx",
	// the subsampled KSG tier with per-step error bars.
	Tier string `json:"tier,omitempty"`
	// Subsample is the approximate tier's per-step evaluation budget r
	// (1 ≤ r < m). Required with tier "approx", rejected without it.
	Subsample int `json:"subsample,omitempty"`
	// Decompose additionally records the per-type Eq. (5) decomposition.
	Decompose bool `json:"decompose,omitempty"`
	// TrackEntropies additionally records the per-step entropy profile.
	TrackEntropies bool `json:"trackEntropies,omitempty"`
	// Workers bounds per-step estimation parallelism; SampleWorkers the
	// within-step sample parallelism (both runtime only; excluded from
	// the fingerprint — results are bit-identical for every setting).
	Workers       int `json:"workers,omitempty"`
	SampleWorkers int `json:"sampleWorkers,omitempty"`
}

// Sweep describes a custom sweep grid: the cross product of TypeCounts ×
// Cutoffs, each cell averaged over Repeats random force draws from the
// Force family. Repeats also overrides the scale preset's repeat count
// for scenario specs.
type Sweep struct {
	TypeCounts []int `json:"typeCounts,omitempty"`
	// Cutoffs entries ≤ 0 mean rc = ∞.
	Cutoffs []float64  `json:"cutoffs,omitempty"`
	Force   *GridForce `json:"force,omitempty"`
	Repeats int        `json:"repeats,omitempty"`
}

// GridForce selects the random interaction family of a sweep-grid cell.
// All bounds are optional; zero values take the paper's sweep defaults.
type GridForce struct {
	// Family is "f1" (random preferred distances, the Figs. 9/10 family)
	// or "f2" (random strength/τ Gaussians, the Fig. 8 family).
	Family string  `json:"family"`
	K      float64 `json:"k,omitempty"`   // f1 constant strength (default 1)
	RLo    float64 `json:"rLo,omitempty"` // f1 r_αβ range (default [2, 8])
	RHi    float64 `json:"rHi,omitempty"`
	KLo    float64 `json:"kLo,omitempty"` // f2 k_αβ range (default [1, 10])
	KHi    float64 `json:"kHi,omitempty"`
	TauLo  float64 `json:"tauLo,omitempty"` // f2 τ_αβ range (default [1, 10])
	TauHi  float64 `json:"tauHi,omitempty"`
}

// Kind classifies what a Spec describes.
type Kind int

const (
	// KindRun is a single measurement pipeline (Sim + Ensemble).
	KindRun Kind = iota
	// KindScenario is a named sweep family from the registry.
	KindScenario
	// KindGrid is a custom sweep grid (Sweep block with grid fields).
	KindGrid
)

func (k Kind) String() string {
	switch k {
	case KindScenario:
		return "scenario"
	case KindGrid:
		return "grid"
	default:
		return "run"
	}
}

// Kind reports what the spec describes. Valid on validated specs;
// ambiguous or incomplete specs are classified best-effort (Validate is
// where they are rejected).
func (sp Spec) Kind() Kind {
	switch {
	case sp.Scenario != "":
		return KindScenario
	case sp.Sweep != nil && (len(sp.Sweep.TypeCounts) > 0 || len(sp.Sweep.Cutoffs) > 0 || sp.Sweep.Force != nil):
		return KindGrid
	default:
		return KindRun
	}
}

// SpecError is one problem found by Validate, naming the offending field
// as a dotted path into the JSON form ("ensemble.m", "sweep.force.family").
type SpecError struct {
	Field string
	Msg   string
}

func (e *SpecError) Error() string {
	if e.Field == "" {
		return "spec: " + e.Msg
	}
	return "spec: " + e.Field + ": " + e.Msg
}

// errf builds a SpecError.
func errf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// ScaleByName resolves a scale preset name. The empty name is the empty
// preset (no defaults contributed).
func ScaleByName(name string) (experiment.Scale, error) {
	switch name {
	case "":
		return experiment.Scale{}, nil
	case "quick":
		return experiment.QuickScale(), nil
	case "paper":
		return experiment.PaperScale(), nil
	case "test":
		return experiment.TestScale(), nil
	default:
		return experiment.Scale{}, errf("scale", "unknown preset %q (want quick, paper, or test)", name)
	}
}

// EffectiveScale resolves the spec's scale preset and applies the
// explicit Ensemble and Sweep.Repeats overrides field by field.
func (sp Spec) EffectiveScale() (experiment.Scale, error) {
	sc, err := ScaleByName(sp.Scale)
	if err != nil {
		return sc, err
	}
	if e := sp.Ensemble; e != nil {
		if e.M > 0 {
			sc.M = e.M
		}
		if e.Steps > 0 {
			sc.Steps = e.Steps
		}
		if e.RecordEvery > 0 {
			sc.RecordEvery = e.RecordEvery
		}
	}
	if sp.Sweep != nil && sp.Sweep.Repeats > 0 {
		sc.Repeats = sp.Sweep.Repeats
	}
	return sc, nil
}

// Validate checks the whole spec and reports every problem it can find as
// a *SpecError, joined with errors.Join (match individual fields with
// errors.As). A nil return means the spec resolves to a runnable
// experiment.
func (sp Spec) Validate() error {
	var errs []error
	add := func(e *SpecError) {
		if e != nil {
			errs = append(errs, e)
		}
	}
	if sp.Version < 0 || sp.Version > Version {
		add(errf("version", "unsupported spec version %d (this build reads up to %d)", sp.Version, Version))
	}
	if _, err := ScaleByName(sp.Scale); err != nil {
		var se *SpecError
		errors.As(err, &se)
		add(se)
	}
	if sp.Estimator != nil {
		for _, e := range sp.Estimator.validate() {
			add(e)
		}
	}
	if sp.Observer != nil {
		for _, e := range sp.Observer.validate() {
			add(e)
		}
	}

	switch sp.Kind() {
	case KindScenario:
		if sp.Sim != nil {
			add(errf("sim", "mutually exclusive with scenario %q", sp.Scenario))
		}
		if sp.Sweep != nil && (len(sp.Sweep.TypeCounts) > 0 || len(sp.Sweep.Cutoffs) > 0 || sp.Sweep.Force != nil) {
			add(errf("sweep", "grid fields are mutually exclusive with scenario %q", sp.Scenario))
		}
		// Scenarios pin their own estimator and observer; accepting and
		// ignoring these blocks would silently mislabel results.
		if sp.Estimator != nil {
			add(errf("estimator", "not configurable for scenario %q (scenarios pin their estimator)", sp.Scenario))
		}
		if sp.Observer != nil {
			add(errf("observer", "not configurable for scenario %q (scenarios pin their observer reduction)", sp.Scenario))
		}
		// The registry itself lives above this package; scenario-name
		// resolution is checked by the sweep layer.
	case KindGrid:
		for _, e := range sp.Sweep.validate() {
			add(e)
		}
		if sp.Sim != nil && sp.Sim.Force != nil {
			add(errf("sim.force", "grid sweeps draw each cell's force from sweep.force; remove one"))
		}
		if sp.Sim != nil && sp.Sim.N < 0 {
			add(errf("sim.n", "must be >= 0, got %d", sp.Sim.N))
		}
		if sp.Observer != nil {
			add(errf("observer", "not supported in grid sweeps (grid cells use the default per-particle observers)"))
		}
	default: // KindRun
		if sp.Sim == nil {
			// A spec without any sim is a fragment (e.g. sopinfo's
			// estimator-only specs): valid to describe, but it cannot
			// declare an ensemble to run.
			if sp.Ensemble != nil || sp.Scale != "" {
				add(errf("sim", "required (or set scenario / a sweep grid)"))
			}
			break
		}
		cfg, err := sp.Sim.Config()
		if err != nil {
			var se *SpecError
			if errors.As(err, &se) {
				add(se)
			} else {
				add(errf("sim", "%v", err))
			}
			break
		}
		if cfg.N <= 0 {
			// Checked before WithDefaults: the round-robin type
			// defaulting panics on a negative N — one of the scattered
			// panics this Validate replaces with a typed error.
			add(errf("sim.n", "must be positive, got %d", cfg.N))
		} else if err := cfg.WithDefaults().Validate(); err != nil {
			add(errf("sim", "%v", err))
		}
		sc, err := sp.EffectiveScale()
		if err == nil {
			// A sim-only spec (no ensemble block, no preset) is valid —
			// it describes a single system (Session.System, sopsim).
			// Once an ensemble is declared it must resolve to a runnable
			// grid; Pipeline() additionally requires one.
			if sp.Ensemble != nil || sp.Scale != "" {
				if sc.M <= 0 {
					add(errf("ensemble.m", "must be positive (set it or a scale preset)"))
				}
				if sc.Steps <= 0 {
					add(errf("ensemble.steps", "must be positive (set it or a scale preset)"))
				}
			}
			if est := sp.Estimator; sc.M > 0 {
				kind, k := experiment.EstimatorKind(""), 0
				track := false
				if est != nil {
					kind, k, track = experiment.EstimatorKind(est.Kind), est.K, est.TrackEntropies
				}
				if kind.UsesKNN() || track {
					effK := k
					if effK == 0 {
						effK = experiment.DefaultKSGK
					}
					if effK >= sc.M {
						add(errf("estimator.k", "k-NN parameter %d must be smaller than the ensemble size m = %d", effK, sc.M))
					}
				}
				if est != nil && experiment.EstimatorTier(est.Tier) == experiment.TierApprox && est.Subsample >= sc.M {
					add(errf("estimator.subsample", "evaluation budget %d must be smaller than the ensemble size m = %d", est.Subsample, sc.M))
				}
			}
		}
	}
	return errors.Join(errs...)
}

// validate checks the estimator block (field paths relative to the spec
// root).
func (e *Estimator) validate() []*SpecError {
	var errs []*SpecError
	if _, err := experiment.NewEstimator(experiment.EstimatorKind(e.Kind), 1, 0, nil); err != nil {
		errs = append(errs, errf("estimator.kind", "%v", err))
	}
	if e.K < 0 {
		errs = append(errs, errf("estimator.k", "must be >= 0, got %d", e.K))
	}
	if e.Bins < 0 {
		errs = append(errs, errf("estimator.bins", "must be >= 0, got %d", e.Bins))
	}
	switch experiment.EstimatorTier(e.Tier) {
	case "", experiment.TierExact:
		if e.Subsample != 0 {
			errs = append(errs, errf("estimator.subsample", `only meaningful with tier "approx"`))
		}
	case experiment.TierApprox:
		if _, ok := experiment.EstimatorKind(e.Kind).KSGVariant(); !ok {
			errs = append(errs, errf("estimator.tier", `"approx" requires a KSG estimator kind, have %q`, e.Kind))
		}
		if e.Subsample < 1 {
			errs = append(errs, errf("estimator.subsample", `tier "approx" needs an evaluation budget >= 1, got %d`, e.Subsample))
		}
	default:
		errs = append(errs, errf("estimator.tier", `unknown tier %q (want "exact" or "approx")`, e.Tier))
	}
	return errs
}

// validate checks the observer block.
func (o *Observer) validate() []*SpecError {
	var errs []*SpecError
	if o.KMeansK < 0 {
		errs = append(errs, errf("observer.kmeansK", "must be >= 0, got %d", o.KMeansK))
	}
	switch o.Reference {
	case "", "first", "medoid":
	default:
		errs = append(errs, errf("observer.reference", "unknown reference %q (want first or medoid)", o.Reference))
	}
	return errs
}

// validate checks the sweep grid block.
func (w *Sweep) validate() []*SpecError {
	var errs []*SpecError
	f := w.Force
	if f == nil {
		errs = append(errs, errf("sweep.force", "required for a grid sweep (family f1 or f2)"))
	} else {
		switch f.Family {
		case "f1", "f2":
		case "":
			errs = append(errs, errf("sweep.force.family", `required ("f1" or "f2")`))
		default:
			errs = append(errs, errf("sweep.force.family", `unknown family %q (want "f1" or "f2")`, f.Family))
		}
		for _, r := range []struct {
			name   string
			lo, hi float64
		}{
			{"rLo/rHi", f.RLo, f.RHi},
			{"kLo/kHi", f.KLo, f.KHi},
			{"tauLo/tauHi", f.TauLo, f.TauHi},
		} {
			// A pair is either fully omitted (both zero → family default)
			// or a proper positive range; a half-specified pair would
			// silently invert the draw interval.
			if r.lo == 0 && r.hi == 0 {
				continue
			}
			if r.lo <= 0 || r.hi <= r.lo {
				errs = append(errs, errf("sweep.force."+r.name, "must satisfy 0 < lo < hi (or omit both for the default), got [%g, %g)", r.lo, r.hi))
			}
		}
	}
	for _, l := range w.TypeCounts {
		if l < 1 {
			errs = append(errs, errf("sweep.typeCounts", "entries must be >= 1, got %d", l))
		}
	}
	if w.Repeats < 0 {
		errs = append(errs, errf("sweep.repeats", "must be >= 0, got %d", w.Repeats))
	}
	return errs
}

// Config materialises the sim block as a sim.Config (defaults not yet
// applied — sim.Config.WithDefaults stays the single place defaults
// live). Specs without a force yield a config without one; single-run
// validation rejects that, grid sweeps fill it per cell.
func (s *Sim) Config() (sim.Config, error) {
	cfg := sim.Config{
		N:                    s.N,
		Types:                append([]int(nil), s.Types...),
		Cutoff:               s.Cutoff,
		Dt:                   s.Dt,
		NoiseVariance:        s.NoiseVariance,
		InitRadius:           s.InitRadius,
		EquilibriumThreshold: s.EquilibriumThreshold,
		EquilibriumWindow:    s.EquilibriumWindow,
		Workers:              s.Workers,
	}
	if len(cfg.Types) == 0 {
		cfg.Types = nil
	}
	if cfg.Cutoff <= 0 {
		// JSON has no infinity literal: absent/zero/negative all mean ∞
		// (matching sim.WithDefaults and the sweep-grid convention).
		cfg.Cutoff = math.Inf(1)
	}
	if s.Force != nil {
		f, err := s.Force.Build()
		if err != nil {
			return cfg, errf("sim.force", "%v", err)
		}
		cfg.Force = f
	}
	return cfg, nil
}

// SimFromConfig captures a sim.Config as a spec block. Infinite cut-offs
// map to the omitted-field convention; the force must be one of the two
// serialisable built-in families.
func SimFromConfig(c sim.Config) (*Sim, error) {
	s := &Sim{
		N:                    c.N,
		Types:                append([]int(nil), c.Types...),
		Cutoff:               c.Cutoff,
		Dt:                   c.Dt,
		NoiseVariance:        c.NoiseVariance,
		InitRadius:           c.InitRadius,
		EquilibriumThreshold: c.EquilibriumThreshold,
		EquilibriumWindow:    c.EquilibriumWindow,
		Workers:              c.Workers,
	}
	if len(s.Types) == 0 {
		s.Types = nil
	}
	if math.IsInf(s.Cutoff, 1) || s.Cutoff < 0 {
		s.Cutoff = 0
	}
	if c.Force != nil {
		fs, err := forces.ToSpec(c.Force)
		if err != nil {
			return nil, err
		}
		s.Force = &fs
	}
	return s, nil
}

// observerConfig materialises the observer block.
func (sp Spec) observerConfig() observer.Config {
	o := sp.Observer
	if o == nil {
		return observer.Config{}
	}
	cfg := observer.Config{
		KMeansK:   o.KMeansK,
		Seed:      o.Seed,
		SkipAlign: o.SkipAlign,
	}
	if o.Reference == "medoid" {
		cfg.Align.Reference = align.RefMedoid
	}
	return cfg
}

// Pipeline materialises a single-run spec as the experiment pipeline it
// describes, with the scale preset resolved into the ensemble grid. It
// validates first; sweeps and scenarios are materialised by the sweep
// layer, not here.
func (sp Spec) Pipeline() (experiment.Pipeline, error) {
	if k := sp.Kind(); k != KindRun {
		return experiment.Pipeline{}, errf("", "a %s spec has no single pipeline form", k)
	}
	if err := sp.Validate(); err != nil {
		return experiment.Pipeline{}, err
	}
	if sp.Sim == nil {
		return experiment.Pipeline{}, errf("sim", "required to run")
	}
	cfg, err := sp.Sim.Config()
	if err != nil {
		return experiment.Pipeline{}, err
	}
	sc, err := sp.EffectiveScale()
	if err != nil {
		return experiment.Pipeline{}, err
	}
	if sc.M <= 0 {
		return experiment.Pipeline{}, errf("ensemble.m", "must be positive (set it or a scale preset)")
	}
	if sc.Steps <= 0 {
		return experiment.Pipeline{}, errf("ensemble.steps", "must be positive (set it or a scale preset)")
	}
	p := experiment.Pipeline{
		Name:     sp.Name,
		Observer: sp.observerConfig(),
		Ensemble: sim.EnsembleConfig{
			Sim:         cfg,
			M:           sc.M,
			Steps:       sc.Steps,
			RecordEvery: sc.RecordEvery,
			Seed:        sp.Seed,
		},
	}
	if e := sp.Ensemble; e != nil {
		p.RetainEnsemble = e.Retain
		p.Ensemble.Workers = e.Workers
	}
	if est := sp.Estimator; est != nil {
		p.Estimator = experiment.EstimatorKind(est.Kind)
		p.K = est.K
		p.Bins = est.Bins
		p.Tier = experiment.EstimatorTier(est.Tier)
		p.Subsample = est.Subsample
		p.Decompose = est.Decompose
		p.TrackEntropies = est.TrackEntropies
		p.Workers = est.Workers
		p.SampleWorkers = est.SampleWorkers
	}
	return p, nil
}

// FromPipeline captures an experiment pipeline as a fully explicit
// single-run spec (no scale preset: the ensemble grid is written out).
// The inverse of Pipeline up to preset expansion: FromPipeline(p).
// Pipeline() rebuilds p exactly, and marshalling the spec to JSON and
// back is lossless.
func FromPipeline(p experiment.Pipeline) (Spec, error) {
	simSpec, err := SimFromConfig(p.Ensemble.Sim)
	if err != nil {
		return Spec{}, err
	}
	sp := Spec{
		Version: Version,
		Name:    p.Name,
		Seed:    p.Ensemble.Seed,
		Sim:     simSpec,
		Ensemble: &Ensemble{
			M:           p.Ensemble.M,
			Steps:       p.Ensemble.Steps,
			RecordEvery: p.Ensemble.RecordEvery,
			Retain:      p.RetainEnsemble,
			Workers:     p.Ensemble.Workers,
		},
	}
	if p.Observer != (observer.Config{}) {
		o := &Observer{
			KMeansK:   p.Observer.KMeansK,
			Seed:      p.Observer.Seed,
			SkipAlign: p.Observer.SkipAlign,
		}
		if p.Observer.Align.Reference == align.RefMedoid {
			o.Reference = "medoid"
		}
		sp.Observer = o
	}
	if p.Estimator != "" || p.K != 0 || p.Bins != 0 || p.Tier != "" || p.Subsample != 0 || p.Decompose || p.TrackEntropies || p.Workers != 0 || p.SampleWorkers != 0 {
		sp.Estimator = &Estimator{
			Kind:           string(p.Estimator),
			K:              p.K,
			Bins:           p.Bins,
			Tier:           string(p.Tier),
			Subsample:      p.Subsample,
			Decompose:      p.Decompose,
			TrackEntropies: p.TrackEntropies,
			Workers:        p.Workers,
			SampleWorkers:  p.SampleWorkers,
		}
	}
	return sp, nil
}

// MergeCLIOverrides fills the spec's open scale/seed/ensemble/repeat
// fields from CLI flags. The spec is authoritative: fields it sets are
// kept (a grid file's own m keeps keying its checkpoints no matter what
// -m says); flags fill only what the spec leaves open. Shared by every
// CLI so the resolution policy cannot drift between commands.
func (sp *Spec) MergeCLIOverrides(scale string, seed uint64, m, steps, repeats int) {
	if sp.Scale == "" {
		sp.Scale = scale
	}
	if sp.Seed == 0 {
		sp.Seed = seed
	}
	if m > 0 || steps > 0 {
		if sp.Ensemble == nil {
			sp.Ensemble = &Ensemble{}
		}
		if m > 0 && sp.Ensemble.M == 0 {
			sp.Ensemble.M = m
		}
		if steps > 0 && sp.Ensemble.Steps == 0 {
			sp.Ensemble.Steps = steps
		}
	}
	if repeats > 0 {
		if sp.Sweep == nil {
			sp.Sweep = &Sweep{}
		}
		if sp.Sweep.Repeats == 0 {
			sp.Sweep.Repeats = repeats
		}
	}
}

// Normalized returns a copy with the version stamped, ready to marshal.
func (sp Spec) Normalized() Spec {
	if sp.Version == 0 {
		sp.Version = Version
	}
	return sp
}

// MarshalIndent renders the spec as canonical indented JSON (the
// -dump-spec output format).
func (sp Spec) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(sp.Normalized(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Load reads and validates a spec file.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return Parse(data, path)
}

// Parse decodes and validates spec JSON. Unknown fields are rejected, so
// a typo'd knob fails loudly instead of silently running the default.
func Parse(data []byte, path string) (Spec, error) {
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Spec{}, fmt.Errorf("spec: parse %s: %w", path, err)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, fmt.Errorf("spec: %s: %w", path, err)
	}
	return sp, nil
}
