package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/observer"
	"repro/internal/sim"
)

func fig4ish() sim.Config {
	r := forces.MustMatrix([][]float64{
		{2.5, 5.0, 4.0},
		{5.0, 2.5, 2.0},
		{4.0, 2.0, 3.5},
	})
	return sim.Config{N: 50, Force: forces.MustF1(forces.ConstantMatrix(3, 1), r), Cutoff: 5}
}

func runSpec(t *testing.T) Spec {
	t.Helper()
	sp, err := New("golden-run",
		WithSim(fig4ish()),
		WithEnsemble(64, 120, 20),
		WithSeed(2012),
		WithEstimator("ksg2", 4),
		WithDecomposition(),
		WithObserver(Observer{KMeansK: 3, Seed: 9}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestJSONRoundTripLossless: marshal → unmarshal → marshal must be a
// fixed point, and the decoded value must equal the original, for each
// spec kind.
func TestJSONRoundTripLossless(t *testing.T) {
	grid, err := New("golden-grid",
		WithGrid([]int{20, 5}, []float64{2.5, 7.5, -1}, "f1"),
		WithGridN(20),
		WithRepeats(3),
		WithScale("test"),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	scenario, err := New("fig8", WithScenario("fig8"), WithScale("quick"), WithSeed(2012))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []Spec{runSpec(t), grid, scenario} {
		b1, err := json.Marshal(sp.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(b1, "roundtrip")
		if err != nil {
			t.Fatalf("%s: %v", sp.Name, err)
		}
		if !reflect.DeepEqual(got, sp.Normalized()) {
			t.Fatalf("%s: round-trip changed the spec:\nwant %+v\ngot  %+v", sp.Name, sp, got)
		}
		b2, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatalf("%s: JSON not a fixed point:\n%s\n%s", sp.Name, b1, b2)
		}
	}
}

// TestPipelineRoundTrip: FromPipeline and Pipeline are inverses, so
// a pipeline captured as a spec runs as exactly the same experiment.
func TestPipelineRoundTrip(t *testing.T) {
	p := experiment.Pipeline{
		Name:      "rt",
		Estimator: experiment.EstKSG1,
		K:         3,
		Decompose: true,
		Observer:  observer.Config{KMeansK: 2, Seed: 5},
		Ensemble: sim.EnsembleConfig{
			Sim: fig4ish(), M: 48, Steps: 60, RecordEvery: 30, Seed: 99,
		},
		RetainEnsemble: true,
	}
	sp, err := FromPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := sp.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	// The force survives as a rebuilt value; compare via its spec form.
	wantF, _ := forces.ToSpec(p.Ensemble.Sim.Force)
	gotF, _ := forces.ToSpec(back.Ensemble.Sim.Force)
	if !reflect.DeepEqual(wantF, gotF) {
		t.Fatalf("force changed: %+v vs %+v", wantF, gotF)
	}
	p.Ensemble.Sim.Force, back.Ensemble.Sim.Force = nil, nil
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("pipeline changed:\nwant %+v\ngot  %+v", p, back)
	}
	// And through JSON.
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := Parse(b, "rt")
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := sp.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := sp2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprint changed across JSON: %x vs %x", fp1, fp2)
	}
}

// TestFingerprintMatchesLegacyCheckpointKey pins PipelineFingerprint to
// the exact byte recipe of the pre-Spec sweep checkpoint key (reproduced
// inline here), so checkpoints written by earlier releases keep
// verifying. If this test fails, existing checkpoint directories are
// silently invalidated — bump the checkpoint file version instead of
// changing the recipe.
func TestFingerprintMatchesLegacyCheckpointKey(t *testing.T) {
	legacy := func(id string, p experiment.Pipeline) (uint64, bool) {
		fspec, err := forces.ToSpec(p.Ensemble.Sim.Force)
		if err != nil {
			return 0, false
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "run|%s|%s|%d|%d|%t|%t|", id, p.Estimator, p.K, p.Bins, p.Decompose, p.TrackEntropies)
		ec := p.Ensemble
		fmt.Fprintf(h, "ens|%d|%d|%d|%d|", ec.M, ec.Steps, ec.RecordEvery, ec.Seed)
		s := ec.Sim
		fmt.Fprintf(h, "sim|%d|%v|%g|%g|%g|%g|%g|%d|", s.N, s.Types, s.Cutoff, s.Dt, s.NoiseVariance, s.InitRadius, s.EquilibriumThreshold, s.EquilibriumWindow)
		fmt.Fprintf(h, "obs|%+v|", p.Observer)
		fmt.Fprintf(h, "force|%+v", fspec)
		return h.Sum64(), true
	}
	pipelines := []experiment.Pipeline{
		{Name: "a", Ensemble: sim.EnsembleConfig{Sim: fig4ish(), M: 32, Steps: 40, RecordEvery: 20, Seed: 7}},
		{Name: "b", Estimator: experiment.EstKernel, Bins: 6, TrackEntropies: true,
			Ensemble: sim.EnsembleConfig{Sim: fig4ish(), M: 16, Steps: 10, RecordEvery: 5, Seed: 1}},
	}
	for i, p := range pipelines {
		id := fmt.Sprintf("run-%d", i)
		want, wantOK := legacy(id, p)
		got, ok := PipelineFingerprint(id, p)
		if ok != wantOK || got != want {
			t.Fatalf("pipeline %d: fingerprint %x (ok=%t), legacy key %x (ok=%t)", i, got, ok, want, wantOK)
		}
	}
	// A custom (non-serialisable) force cannot be fingerprinted.
	if _, ok := PipelineFingerprint("x", experiment.Pipeline{}); ok {
		t.Fatal("nil force fingerprinted")
	}
}

// goldenFingerprints pins the fingerprint of each golden spec file.
// These values must NEVER change: a spec serialized today must load and
// fingerprint identically forever, including after future field
// additions (new fields must be omitempty so absent-field JSON — and the
// run fingerprint recipe — stay stable).
var goldenFingerprints = map[string]string{
	"run.json":        "be86699539325bde",
	"grid.json":       "08070089628c7d38",
	"scenario.json":   "5fcf193f4ef640c1",
	"approx-run.json": "c271a9cdf582d515",
}

// TestGoldenSpecs loads each golden file, requires a lossless round-trip
// back to the identical bytes, and requires the pinned fingerprint.
func TestGoldenSpecs(t *testing.T) {
	for name, wantFP := range goldenFingerprints {
		path := filepath.Join("testdata", name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := sp.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(data) {
			t.Errorf("%s: round-trip changed the file:\n--- on disk\n%s--- re-marshalled\n%s", name, data, b)
		}
		fp, err := sp.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := fmt.Sprintf("%016x", fp); got != wantFP {
			t.Errorf("%s: fingerprint %s, golden %s — a changed fingerprint invalidates every checkpoint on disk", name, got, wantFP)
		}
	}
}

// TestEstimatorKindsRoundTripThroughSpec: every Est* constant survives
// spec JSON and resolves back to a valid pipeline estimator.
func TestEstimatorKindsRoundTripThroughSpec(t *testing.T) {
	for _, kind := range experiment.ValidEstimators() {
		sp, err := New(string(kind),
			WithSim(fig4ish()),
			WithEnsemble(32, 10, 5),
			WithEstimator(string(kind), 2),
		)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := json.Marshal(sp.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(b, string(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		p, err := got.Pipeline()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.Estimator != kind {
			t.Fatalf("kind %q became %q", kind, p.Estimator)
		}
	}
}

// TestValidateTypedErrors: Validate reports every problem as *SpecError
// with a JSON field path, and unknown estimator kinds carry the
// experiment layer's typed error message listing the valid kinds.
func TestValidateTypedErrors(t *testing.T) {
	sp := Spec{
		Version:   99,
		Scale:     "huge",
		Sim:       &Sim{N: -1},
		Ensemble:  &Ensemble{M: 4, Steps: 10},
		Estimator: &Estimator{Kind: "magic", K: -2},
		Observer:  &Observer{Reference: "median"},
	}
	err := sp.Validate()
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("no *SpecError in %v", err)
	}
	for _, field := range []string{"version", "scale", "estimator.kind", "estimator.k", "observer.reference", "sim.n"} {
		found := false
		for _, e := range multiErrors(err) {
			if e.Field == field {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no error for field %q in:\n%v", field, err)
		}
	}
	if got := err.Error(); !contains(got, "valid kinds: ksg2, ksg1, ksg-paper, kernel, binned") {
		t.Errorf("unknown-estimator error does not list valid kinds:\n%s", got)
	}

	// A sim-only spec is a valid description (Session.System, sopsim)…
	simOnly := Spec{Sim: mustSim(t, fig4ish())}
	if err := simOnly.Validate(); err != nil {
		t.Fatalf("sim-only spec rejected: %v", err)
	}
	// …but it has no runnable pipeline.
	if _, err := simOnly.Pipeline(); err == nil {
		t.Fatal("sim-only spec produced a pipeline")
	}
	// The defaulted k is checked against the resolved M, like the
	// pipeline itself would.
	tooSmall := Spec{Sim: mustSim(t, fig4ish()), Ensemble: &Ensemble{M: 4, Steps: 10}}
	err = tooSmall.Validate()
	if err == nil || !contains(err.Error(), "estimator.k") {
		t.Fatalf("k >= M not caught: %v", err)
	}
}

// TestTierFingerprintCompat is the tier half of the frozen-recipe
// contract: a spec with no tier field (and one saying "exact"
// explicitly) must fingerprint byte-identically to the pre-tier recipe,
// while switching to the approximate tier — or changing its budget —
// must produce a new identity (the numbers differ, so shared
// checkpoints must not collide).
func TestTierFingerprintCompat(t *testing.T) {
	base := runSpec(t)
	want, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	exact := base
	est := *exact.Estimator
	est.Tier = "exact"
	exact.Estimator = &est
	fp, err := exact.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != want {
		t.Errorf(`tier "exact" changed the fingerprint: %016x vs %016x`, fp, want)
	}
	approx := base
	estA := *approx.Estimator
	estA.Tier, estA.Subsample = "approx", 16
	approx.Estimator = &estA
	afp, err := approx.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if afp == want {
		t.Error(`tier "approx" did not change the fingerprint`)
	}
	estB := estA
	estB.Subsample = 32
	approx.Estimator = &estB
	bfp, err := approx.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if bfp == afp {
		t.Error("changing Subsample did not change the fingerprint")
	}
}

// TestTierValidationTypedErrors: the tier knobs reject unknown tiers,
// non-KSG kinds, missing/oversized budgets and stray budgets, each as a
// *SpecError naming the offending field.
func TestTierValidationTypedErrors(t *testing.T) {
	mk := func(mut func(*Estimator)) Spec {
		sp := runSpec(t)
		est := *sp.Estimator
		mut(&est)
		sp.Estimator = &est
		return sp
	}
	cases := []struct {
		name  string
		sp    Spec
		field string
	}{
		{"unknown tier", mk(func(e *Estimator) { e.Tier = "fast" }), "estimator.tier"},
		{"non-KSG kind", mk(func(e *Estimator) { e.Kind = "binned"; e.Tier = "approx"; e.Subsample = 8 }), "estimator.tier"},
		{"missing budget", mk(func(e *Estimator) { e.Tier = "approx" }), "estimator.subsample"},
		{"budget at m", mk(func(e *Estimator) { e.Tier = "approx"; e.Subsample = 64 }), "estimator.subsample"},
		{"budget beyond m", mk(func(e *Estimator) { e.Tier = "approx"; e.Subsample = 500 }), "estimator.subsample"},
		{"stray budget", mk(func(e *Estimator) { e.Subsample = 8 }), "estimator.subsample"},
	}
	for _, tc := range cases {
		err := tc.sp.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		found := false
		for _, se := range multiErrors(err) {
			if se.Field == tc.field {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no *SpecError for field %q in %v", tc.name, tc.field, err)
		}
	}

	// A valid approximate-tier spec materialises with the tier threaded
	// through to the pipeline, and survives JSON losslessly.
	sp := mk(func(e *Estimator) { e.Tier = "approx"; e.Subsample = 16 })
	p, err := sp.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if p.Tier != experiment.TierApprox || p.Subsample != 16 {
		t.Fatalf("tier not threaded: %+v", p)
	}
	back, err := FromPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimator.Tier != "approx" || back.Estimator.Subsample != 16 {
		t.Fatalf("FromPipeline dropped the tier: %+v", back.Estimator)
	}
}

// TestCutoffInfinityConvention: ∞ cut-offs survive the JSON round trip
// via the ≤0-means-∞ convention.
func TestCutoffInfinityConvention(t *testing.T) {
	cfg := fig4ish()
	cfg.Cutoff = math.Inf(1)
	s, err := SimFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cutoff != 0 {
		t.Fatalf("infinite cutoff serialised as %g", s.Cutoff)
	}
	back, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Cutoff, 1) {
		t.Fatalf("cutoff %g, want +Inf", back.Cutoff)
	}
}

// TestParseRejectsUnknownFields: a typo'd knob fails loudly.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"version":1,"scenaro":"fig8"}`), "typo"); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"version":99,"scenario":"fig8"}`), "future"); err == nil {
		t.Fatal("future version accepted")
	}
}

func mustSim(t *testing.T, c sim.Config) *Sim {
	t.Helper()
	s, err := SimFromConfig(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func multiErrors(err error) []*SpecError {
	type unwrapper interface{ Unwrap() []error }
	var out []*SpecError
	var walk func(error)
	walk = func(e error) {
		if se, ok := e.(*SpecError); ok {
			out = append(out, se)
			return
		}
		if u, ok := e.(unwrapper); ok {
			for _, c := range u.Unwrap() {
				walk(c)
			}
		}
	}
	walk(err)
	return out
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
