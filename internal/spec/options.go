package spec

import (
	"fmt"

	"repro/internal/sim"
)

// Option configures a Spec under construction.
type Option func(*Spec) error

// New builds a spec from options and validates it — the programmatic
// counterpart of loading a JSON file.
func New(name string, opts ...Option) (Spec, error) {
	sp := Spec{Version: Version, Name: name}
	for _, opt := range opts {
		if err := opt(&sp); err != nil {
			return Spec{}, err
		}
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// MustNew is New for static, known-good specs; it panics on error.
func MustNew(name string, opts ...Option) Spec {
	sp, err := New(name, opts...)
	if err != nil {
		panic(fmt.Sprintf("spec: %v", err))
	}
	return sp
}

// WithScenario selects a named sweep family from the registry.
func WithScenario(name string) Option {
	return func(sp *Spec) error { sp.Scenario = name; return nil }
}

// WithScale applies an ensemble-size preset ("quick", "paper", "test").
func WithScale(preset string) Option {
	return func(sp *Spec) error { sp.Scale = preset; return nil }
}

// WithSeed sets the master seed.
func WithSeed(seed uint64) Option {
	return func(sp *Spec) error { sp.Seed = seed; return nil }
}

// WithSim captures a simulation configuration (the force must be one of
// the serialisable built-in families).
func WithSim(cfg sim.Config) Option {
	return func(sp *Spec) error {
		s, err := SimFromConfig(cfg)
		if err != nil {
			return err
		}
		sp.Sim = s
		return nil
	}
}

// WithEnsemble sets the explicit ensemble grid (overriding any scale
// preset field by field).
func WithEnsemble(m, steps, recordEvery int) Option {
	return func(sp *Spec) error {
		e := sp.ensureEnsemble()
		e.M, e.Steps, e.RecordEvery = m, steps, recordEvery
		return nil
	}
}

// WithRetainEnsemble keeps the raw trajectories in the result.
func WithRetainEnsemble() Option {
	return func(sp *Spec) error { sp.ensureEnsemble().Retain = true; return nil }
}

// WithObserver sets the observer block.
func WithObserver(o Observer) Option {
	return func(sp *Spec) error { sp.Observer = &o; return nil }
}

// WithEstimator selects the estimator kind and its k-NN parameter
// (0 = the paper's default).
func WithEstimator(kind string, k int) Option {
	return func(sp *Spec) error {
		e := sp.ensureEstimator()
		e.Kind, e.K = kind, k
		return nil
	}
}

// WithEstimatorTier selects the estimator tier ("exact" or "approx")
// and, for the approximate tier, the per-step evaluation budget
// (1 ≤ subsample < m).
func WithEstimatorTier(tier string, subsample int) Option {
	return func(sp *Spec) error {
		e := sp.ensureEstimator()
		e.Tier, e.Subsample = tier, subsample
		return nil
	}
}

// WithDecomposition additionally records the per-type Eq. (5)
// decomposition at every recorded step.
func WithDecomposition() Option {
	return func(sp *Spec) error { sp.ensureEstimator().Decompose = true; return nil }
}

// WithEntropyTracking additionally records the per-step entropy profile.
func WithEntropyTracking() Option {
	return func(sp *Spec) error { sp.ensureEstimator().TrackEntropies = true; return nil }
}

// WithGrid declares a custom sweep grid over type counts × cut-off radii
// (entries ≤ 0 mean rc = ∞) with random draws from the given force
// family ("f1" or "f2").
func WithGrid(typeCounts []int, cutoffs []float64, family string) Option {
	return func(sp *Spec) error {
		sp.ensureSweep().TypeCounts = append([]int(nil), typeCounts...)
		sp.Sweep.Cutoffs = append([]float64(nil), cutoffs...)
		sp.Sweep.Force = &GridForce{Family: family}
		return nil
	}
}

// WithGridForce replaces the sweep grid's force family description
// wholesale (for non-default draw ranges).
func WithGridForce(f GridForce) Option {
	return func(sp *Spec) error { sp.ensureSweep().Force = &f; return nil }
}

// WithRepeats sets the per-cell repeat draws of a sweep (overriding the
// scale preset).
func WithRepeats(n int) Option {
	return func(sp *Spec) error { sp.ensureSweep().Repeats = n; return nil }
}

// WithGridN sets the particle count of every grid cell.
func WithGridN(n int) Option {
	return func(sp *Spec) error {
		if sp.Sim == nil {
			sp.Sim = &Sim{}
		}
		sp.Sim.N = n
		return nil
	}
}

func (sp *Spec) ensureEnsemble() *Ensemble {
	if sp.Ensemble == nil {
		sp.Ensemble = &Ensemble{}
	}
	return sp.Ensemble
}

func (sp *Spec) ensureEstimator() *Estimator {
	if sp.Estimator == nil {
		sp.Estimator = &Estimator{}
	}
	return sp.Estimator
}

func (sp *Spec) ensureSweep() *Sweep {
	if sp.Sweep == nil {
		sp.Sweep = &Sweep{}
	}
	return sp.Sweep
}
