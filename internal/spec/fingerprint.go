package spec

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/experiment"
	"repro/internal/forces"
)

// PipelineFingerprint derives a stable FNV-1a identity for everything
// that affects a single run's numbers: the pipeline knobs, the ensemble
// grid and seed, the simulation parameters, and the serialised force
// spec. It is THE checkpoint key — the sweep layer's gob checkpoints are
// keyed by it, and its byte recipe is frozen (checkpoints written by
// earlier releases must keep verifying), so changes here invalidate every
// checkpoint on disk and must bump the checkpoint file version instead.
//
// ok is false when the force is a custom Scaling with no serialisable
// spec — such runs are recomputed rather than resumed, since their
// identity cannot be pinned. Worker counts and budgets are deliberately
// excluded: results are bit-identical across all of them.
func PipelineFingerprint(id string, p experiment.Pipeline) (fp uint64, ok bool) {
	if p.Ensemble.Sim.Force == nil {
		return 0, false
	}
	fspec, err := forces.ToSpec(p.Ensemble.Sim.Force)
	if err != nil {
		return 0, false
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "run|%s|%s|%d|%d|%t|%t|", id, p.Estimator, p.K, p.Bins, p.Decompose, p.TrackEntropies)
	ec := p.Ensemble
	fmt.Fprintf(h, "ens|%d|%d|%d|%d|", ec.M, ec.Steps, ec.RecordEvery, ec.Seed)
	s := ec.Sim
	fmt.Fprintf(h, "sim|%d|%v|%g|%g|%g|%g|%g|%d|", s.N, s.Types, s.Cutoff, s.Dt, s.NoiseVariance, s.InitRadius, s.EquilibriumThreshold, s.EquilibriumWindow)
	fmt.Fprintf(h, "obs|%+v|", p.Observer)
	fmt.Fprintf(h, "force|%+v", fspec)
	// The approximate tier changes the numbers, so it keys the
	// fingerprint — but only when enabled: exact-tier pipelines (tier
	// absent or "exact") must keep hashing the frozen legacy recipe
	// byte-for-byte, or every checkpoint on disk would be orphaned.
	if p.Tier == experiment.TierApprox {
		fmt.Fprintf(h, "|tier|%s|%d", p.Tier, p.Subsample)
	}
	return h.Sum64(), true
}

// Fingerprint derives the spec's stable identity.
//
// A single-run spec fingerprints exactly as PipelineFingerprint of its
// resolved pipeline keyed by its name — the same value the sweep layer's
// checkpoints use, so a Spec subsumes the checkpoint key. Scenario and
// grid specs hash their canonical JSON form (normalized, omitempty):
// because absent fields are omitted, a spec serialized today fingerprints
// identically after future field additions. Runtime-only knobs (worker
// counts) are excluded from single-run fingerprints and excluded from
// sweep fingerprints by zeroing them before hashing.
func (sp Spec) Fingerprint() (uint64, error) {
	if sp.Kind() == KindRun {
		p, err := sp.Pipeline()
		if err != nil {
			return 0, err
		}
		fp, ok := PipelineFingerprint(sp.Name, p)
		if !ok {
			return 0, fmt.Errorf("spec: force family has no serialisable fingerprint")
		}
		return fp, nil
	}
	n := sp.Normalized()
	// Zero the runtime-only knobs so deployments with different worker
	// settings agree on the identity of identical experiments.
	if n.Sim != nil {
		simCopy := *n.Sim
		simCopy.Workers = 0
		n.Sim = &simCopy
	}
	if n.Ensemble != nil {
		ensCopy := *n.Ensemble
		ensCopy.Workers = 0
		n.Ensemble = &ensCopy
	}
	if n.Estimator != nil {
		estCopy := *n.Estimator
		estCopy.Workers, estCopy.SampleWorkers = 0, 0
		n.Estimator = &estCopy
	}
	b, err := json.Marshal(n)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write([]byte("spec|"))
	h.Write(b)
	return h.Sum64(), nil
}
