// Package workpool provides the one worker-pool idiom the pipeline stages
// share: distribute items over a bounded set of goroutines, stop handing
// out work on the first error, and never strand the producer.
//
// The drain contract matters: a naive pool whose workers return on error
// leaves the producer blocked forever on an unbuffered send once every
// worker has exited — the exact deadlock the pre-streaming ensemble runner
// shipped. Centralising the select-on-done producer here keeps the fix in
// one place for every stage (simulation, alignment, estimation feeds).
package workpool

import "sync"

// Run executes fn(i) for every i in [0, n) on up to `workers` goroutines
// (at least 1; capped at n). If any call returns an error, no further
// items are handed out, in-flight calls finish, and the first error is
// returned. fn must be safe for concurrent invocation on distinct items.
func Run(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		done     = make(chan struct{})
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(done)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
produce:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done: // a worker failed: stop producing
			break produce
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}
