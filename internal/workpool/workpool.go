// Package workpool provides the one worker-pool idiom the pipeline stages
// share: distribute items over a bounded set of goroutines, stop handing
// out work on the first error, and never strand the producer.
//
// The drain contract matters: a naive pool whose workers return on error
// leaves the producer blocked forever on an unbuffered send once every
// worker has exited — the exact deadlock the pre-streaming ensemble runner
// shipped. Centralising the select-on-done producer here keeps the fix in
// one place for every stage (simulation, alignment, estimation feeds).
package workpool

import (
	"context"
	"runtime"
	"sync"
)

// Tokens is a shared concurrency budget: a fixed pool of execution tokens
// that any number of worker pools (across any number of concurrently
// running pipelines) draw from. A worker holds one token for the duration
// of one work item and returns it between items, so a global budget of B
// tokens bounds the machine-wide active work at B items regardless of how
// many pools are in flight — small jobs cannot leave cores idle, and big
// fan-outs cannot oversubscribe.
//
// A nil *Tokens is a valid no-op budget (Acquire/Release do nothing), so
// budget support can be threaded through APIs without burdening callers
// that do not use it. Tokens carries no fairness guarantee beyond the
// runtime's channel scheduling; holders must always complete their item
// without acquiring further tokens, which keeps the pool deadlock-free by
// construction.
type Tokens struct {
	ch chan struct{}
}

// NewTokens returns a budget of n tokens; n <= 0 means GOMAXPROCS.
func NewTokens(n int) *Tokens {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Tokens{ch: make(chan struct{}, n)}
}

// Cap returns the budget size. A nil budget reports 0 (unlimited).
func (t *Tokens) Cap() int {
	if t == nil {
		return 0
	}
	return cap(t.ch)
}

// Acquire takes one token, blocking until one is free. No-op on nil.
func (t *Tokens) Acquire() {
	if t != nil {
		t.ch <- struct{}{}
	}
}

// AcquireCtx takes one token, blocking until one is free or the context is
// cancelled, in which case no token is held and the context's error is
// returned. This is the cancellation point of every budgeted stage: a
// cancelled pipeline stops within one token-grant — in-flight work items
// complete, no new item starts.
func (t *Tokens) AcquireCtx(ctx context.Context) error {
	if t == nil {
		// Honour cancellation even without a budget, so unbudgeted
		// pools stop handing out work just as promptly.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	select {
	case t.ch <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a token taken by Acquire. No-op on nil.
func (t *Tokens) Release() {
	if t != nil {
		<-t.ch
	}
}

// Run executes fn(i) for every i in [0, n) on up to `workers` goroutines
// (at least 1; capped at n). If any call returns an error, no further
// items are handed out, in-flight calls finish, and the first error is
// returned. fn must be safe for concurrent invocation on distinct items.
func Run(n, workers int, fn func(i int) error) error {
	return RunShared(n, workers, nil, func(_, i int) error { return fn(i) })
}

// RunShared is Run under a shared token budget: each work item is
// processed while holding one token from tok (nil tok waives the budget),
// and fn additionally receives the dense worker slot index in
// [0, min(workers, n)) of the goroutine processing the item, so callers
// can keep per-worker scratch state (estimator engines, reusable buffers)
// without locking. Items are handed out in order but complete in any
// order; the single-worker path runs inline with no goroutines.
func RunShared(n, workers int, tok *Tokens, fn func(worker, i int) error) error {
	return RunSharedCtx(context.Background(), n, workers, tok, fn)
}

// RunSharedCtx is RunShared under a context: cancellation stops the pool
// within one token-grant. A worker waiting for a token abandons the wait
// and exits; a worker mid-item finishes that item; the producer hands out
// no further items. When the context's cancellation is what stopped the
// pool, the context's error is returned verbatim (so callers can match
// context.Canceled with errors.Is); an fn error observed first wins.
func RunSharedCtx(ctx context.Context, n, workers int, tok *Tokens, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := tok.AcquireCtx(ctx); err != nil {
				return err
			}
			err := fn(0, i)
			tok.Release()
			if err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		done     = make(chan struct{})
		failOnce sync.Once
		firstErr error
	)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			close(done)
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				if err := tok.AcquireCtx(ctx); err != nil {
					fail(err)
					return
				}
				err := fn(w, i)
				tok.Release()
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
produce:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done: // a worker failed: stop producing
			break produce
		case <-ctx.Done():
			fail(ctx.Err())
			break produce
		}
	}
	close(next)
	wg.Wait()
	return firstErr
}
