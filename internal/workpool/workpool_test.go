package workpool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var mu sync.Mutex
		seen := map[int]int{}
		if err := Run(37, workers, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != 37 {
			t.Fatalf("workers=%d: %d items ran, want 37", workers, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if err := Run(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := Run(1, 8, func(int) error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRunReturnsFirstErrorAndStops(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Run(10_000, 2, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Error("error did not stop the producer early")
	}
}

func TestRunSharedWorkerSlotsAreDense(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var mu sync.Mutex
		slots := map[int]bool{}
		if err := RunShared(50, workers, nil, func(w, i int) error {
			mu.Lock()
			slots[w] = true
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		max := workers
		if max > 50 {
			max = 50
		}
		for w := range slots {
			if w < 0 || w >= max {
				t.Fatalf("workers=%d: slot %d outside [0,%d)", workers, w, max)
			}
		}
	}
}

// TestTokensBoundGlobalConcurrency runs several pools against one shared
// budget and checks the number of simultaneously active items never
// exceeds the budget — the invariant the sweep runner relies on.
func TestTokensBoundGlobalConcurrency(t *testing.T) {
	const budget = 3
	tok := NewTokens(budget)
	var active, peak atomic.Int64
	var wg sync.WaitGroup
	for pool := 0; pool < 4; pool++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = RunShared(40, 8, tok, func(_, _ int) error {
				n := active.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
				active.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > budget {
		t.Fatalf("peak active items %d exceeds budget %d", p, budget)
	}
}

func TestNilTokensAreNoOp(t *testing.T) {
	var tok *Tokens
	tok.Acquire()
	tok.Release()
	if tok.Cap() != 0 {
		t.Fatal("nil budget should report Cap 0")
	}
	if NewTokens(0).Cap() <= 0 {
		t.Fatal("defaulted budget must be positive")
	}
}

func TestRunSharedPropagatesErrorUnderBudget(t *testing.T) {
	boom := errors.New("boom")
	tok := NewTokens(2)
	err := RunShared(1000, 4, tok, func(_, i int) error {
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The budget must be fully returned: both tokens acquirable without
	// blocking.
	done := make(chan struct{})
	go func() {
		tok.Acquire()
		tok.Acquire()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tokens leaked after an error run")
	}
}

// TestRunAllWorkersFailNoDeadlock is the pool-level deadlock regression
// test: every worker errors immediately, with far more items than workers;
// the producer must drain instead of blocking on an unbuffered send.
func TestRunAllWorkersFailNoDeadlock(t *testing.T) {
	donec := make(chan error, 1)
	go func() {
		donec <- Run(100_000, 4, func(int) error { return errors.New("fail") })
	}()
	select {
	case err := <-donec:
		if err == nil {
			t.Fatal("no error reported")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked when all workers failed")
	}
}

// TestAcquireCtxCancellation: a budget waiter abandons the wait when the
// context is cancelled, and a nil budget still honours cancellation —
// the one-token-grant cancellation contract every stage builds on.
func TestAcquireCtxCancellation(t *testing.T) {
	tok := NewTokens(1)
	tok.Acquire() // exhaust the budget
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- tok.AcquireCtx(ctx) }()
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("AcquireCtx returned %v, want context.Canceled", err)
	}
	tok.Release()

	var nilTok *Tokens
	if err := nilTok.AcquireCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("nil AcquireCtx returned %v, want context.Canceled", err)
	}
	if err := nilTok.AcquireCtx(context.Background()); err != nil {
		t.Fatalf("nil AcquireCtx with live context: %v", err)
	}
}

// TestRunSharedCtxCancellation: cancelling mid-pool stops further items
// and returns the context's error verbatim, on both the inline
// single-worker path and the goroutine pool.
func TestRunSharedCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int64
		err := RunSharedCtx(ctx, 100, workers, nil, func(_, i int) error {
			if started.Add(1) == 3 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := started.Load(); n >= 100 {
			t.Fatalf("workers=%d: all items ran despite cancellation", workers)
		}
	}
}
