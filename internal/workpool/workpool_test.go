package workpool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var mu sync.Mutex
		seen := map[int]int{}
		if err := Run(37, workers, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(seen) != 37 {
			t.Fatalf("workers=%d: %d items ran, want 37", workers, len(seen))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if err := Run(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := Run(1, 8, func(int) error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestRunReturnsFirstErrorAndStops(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := Run(10_000, 2, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 10_000 {
		t.Error("error did not stop the producer early")
	}
}

// TestRunAllWorkersFailNoDeadlock is the pool-level deadlock regression
// test: every worker errors immediately, with far more items than workers;
// the producer must drain instead of blocking on an unbuffered send.
func TestRunAllWorkersFailNoDeadlock(t *testing.T) {
	donec := make(chan error, 1)
	go func() {
		donec <- Run(100_000, 4, func(int) error { return errors.New("fail") })
	}()
	select {
	case err := <-donec:
		if err == nil {
			t.Fatal("no error reported")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run deadlocked when all workers failed")
	}
}
