package sops

import (
	"math"
	"strings"

	"repro/internal/plot"
	"repro/internal/vec"
)

// Rendering conveniences re-exported for example programs and downstream
// tools (stdlib-only ASCII/SVG output; see internal/plot).
type (
	// Chart is a multi-series ASCII line chart.
	Chart = plot.Chart
)

var (
	// SVGScatter renders a typed particle configuration as SVG.
	SVGScatter = plot.SVGScatter
	// SVGLines renders named series as an SVG line chart.
	SVGLines = plot.SVGLines
	// WriteSeriesCSV / ReadSeriesCSV exchange series data as CSV.
	WriteSeriesCSV = plot.WriteSeriesCSV
	ReadSeriesCSV  = plot.ReadSeriesCSV
)

// ASCIIScatter renders a typed particle configuration on a w×h character
// grid, digits being particle types — the terminal counterpart of the
// paper's configuration figures.
func ASCIIScatter(pos []Vec2, types []int, w, h int) string {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	min, max := vec.BoundingBox(pos)
	spanX := math.Max(max.X-min.X, 1e-9)
	spanY := math.Max(max.Y-min.Y, 1e-9)
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for i, p := range pos {
		c := int((p.X - min.X) / spanX * float64(w-1))
		r := int((max.Y - p.Y) / spanY * float64(h-1))
		ty := 0
		if types != nil {
			ty = types[i] % 10
		}
		grid[r][c] = byte('0' + ty)
	}
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// FloatTimes converts recorded step indices to float64 x-values for charts.
func FloatTimes(times []int) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = float64(t)
	}
	return out
}
