package sops

import (
	"math"
	"strings"

	"repro/internal/plot"
)

// Rendering conveniences re-exported for example programs and downstream
// tools (stdlib-only ASCII/SVG output; see internal/plot).
type (
	// Chart is a multi-series ASCII line chart.
	Chart = plot.Chart
)

var (
	// SVGScatter renders a typed particle configuration as SVG.
	SVGScatter = plot.SVGScatter
	// SVGLines renders named series as an SVG line chart.
	SVGLines = plot.SVGLines
	// WriteSeriesCSV / ReadSeriesCSV exchange series data as CSV.
	WriteSeriesCSV = plot.WriteSeriesCSV
	ReadSeriesCSV  = plot.ReadSeriesCSV
)

// ASCIIScatter renders a typed particle configuration on a w×h character
// grid, digits being particle types — the terminal counterpart of the
// paper's configuration figures.
//
// The renderer is defensive about degenerate input, because it is the
// first thing a user points at a diverged simulation: nil or empty
// positions yield an empty grid, non-finite positions (NaN/±Inf — an
// unstable Dt produces them) are skipped, and grid indices are clamped so
// rounding at the bounding-box edge can never index out of range.
func ASCIIScatter(pos []Vec2, types []int, w, h int) string {
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	// Bounding box over the finite points only; a single rogue Inf must
	// not collapse every finite point onto one cell (and NaN would poison
	// the spans entirely).
	min := Vec2{X: math.Inf(1), Y: math.Inf(1)}
	max := Vec2{X: math.Inf(-1), Y: math.Inf(-1)}
	finite := 0
	for _, p := range pos {
		if !isFinite2(p) {
			continue
		}
		finite++
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	if finite == 0 {
		return renderGrid(grid)
	}
	spanX := math.Max(max.X-min.X, 1e-9)
	spanY := math.Max(max.Y-min.Y, 1e-9)
	for i, p := range pos {
		if !isFinite2(p) {
			continue
		}
		c := clampIndex(int((p.X-min.X)/spanX*float64(w-1)), w)
		r := clampIndex(int((max.Y-p.Y)/spanY*float64(h-1)), h)
		ty := 0
		if types != nil && i < len(types) {
			ty = ((types[i] % 10) + 10) % 10
		}
		grid[r][c] = byte('0' + ty)
	}
	return renderGrid(grid)
}

func isFinite2(p Vec2) bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func renderGrid(grid [][]byte) string {
	var b strings.Builder
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// FloatTimes converts recorded step indices to float64 x-values for charts.
func FloatTimes(times []int) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		out[i] = float64(t)
	}
	return out
}
