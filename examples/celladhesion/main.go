// Cell adhesion morphologies: the biological motivation of the paper
// (Secs. 1, 7.2). Differential adhesion alone — no top-down control — sorts
// a mixed ball of "cells" into structured tissues: a tightly adhesive core
// surrounded by a looser shell ("ball enclosed in a circle"), and layered
// type-sorted bands (Figs. 1, 12).
//
// Each tissue is described as a declarative sops.Spec (sim block only —
// no ensemble needed) and validated through Spec.Validate before
// anything runs; Session.System materialises the single simulation.
//
// Numerical note: strong adhesion (k = 4) with dense neighbourhoods makes
// the overdamped spring system stiff; the step size follows
// sim.MaxStableDt (dt < 2/(k·neighbours), here 0.01).
//
// Run with:
//
//	go run ./examples/celladhesion [-svg] [-scale test]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	sops "repro"
)

func main() {
	writeSVG := flag.Bool("svg", false, "also write SVG files next to the binary")
	scale := flag.String("scale", "", "\"test\" caps the equilibrium search at a CI-sized step budget")
	flag.Parse()
	maxSteps := 4000
	if *scale == "test" {
		maxSteps = 200
	}

	type tissue struct {
		name  string
		n     int
		types []int
		r     [][]float64
		rc    float64
	}
	tissues := []tissue{
		{
			// Two types: tightly adhesive core, loose shell → the
			// core ball surrounded by a shell halo.
			name:  "ball-in-ring",
			n:     36,
			types: sops.TypesBlocks(36, 2),
			r: [][]float64{
				{1.0, 2.0},
				{2.0, 2.6},
			},
			rc: 6,
		},
		{
			// Three types with graded preferred distances → layers.
			name:  "layered-tissue",
			n:     42,
			types: sops.TypesBlocks(42, 3),
			r: [][]float64{
				{1.2, 1.8, 3.6},
				{1.8, 1.2, 1.8},
				{3.6, 1.8, 1.2},
			},
			rc: 6,
		},
		{
			// Four nested types, the Fig. 1 morphology.
			name:  "nucleus-and-membranes",
			n:     40,
			types: sops.TypesRoundRobin(40, 4),
			r: [][]float64{
				{1.0, 1.8, 2.6, 3.4},
				{1.8, 1.4, 2.2, 3.0},
				{2.6, 2.2, 1.8, 2.6},
				{3.4, 3.0, 2.6, 2.2},
			},
			rc: 8,
		},
	}

	session := sops.NewSession()
	for _, ts := range tissues {
		l := len(ts.r)
		spec, err := sops.NewSpec(ts.name,
			sops.WithSeed(7),
			sops.WithSim(sops.SimConfig{
				N:          ts.n,
				Types:      ts.types,
				Force:      sops.MustF1(sops.ConstantMatrix(l, 4), sops.MustMatrix(ts.r)),
				Cutoff:     ts.rc,
				Dt:         0.01,
				InitRadius: 2.5,
			}),
		)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := session.System(spec)
		if err != nil {
			log.Fatal(err)
		}
		steps, eq := sys.RunUntilEquilibrium(maxSteps)
		fmt.Printf("== %s == (%d particles, %d types, rc=%g)\n", ts.name, ts.n, l, ts.rc)
		if eq {
			fmt.Printf("equilibrium after %d steps (net force %.2f)\n", steps, sys.NetForce())
		} else {
			fmt.Printf("no force equilibrium within %d steps (net force %.2f) — Sec. 6: noise keeps the collective jittering\n",
				steps, sys.NetForce())
		}
		fmt.Print(sops.ASCIIScatter(sys.Positions(), sys.Types(), 56, 20))
		fmt.Println()

		if *writeSVG {
			svg := sops.SVGScatter(ts.name, sys.Positions(), sys.Types(), 480)
			name := ts.name + ".svg"
			if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", name)
		}
	}
}
