// Two measures of self-organization side by side (Sec. 3): the paper's
// multi-information of shape-invariant observers against the statistical
// complexity of the symbolised particle dynamics (the ε-machine-based
// alternative of Shalizi that the paper discusses and departs from).
//
// Sec. 7.1 predicts their disagreement on a crystallising collective: the
// multi-information stays low for a uniform collective settling into a
// unique grid (no shape variety), while during the transient the motion is
// structured; once frozen, both measures drop — the random initial phase
// and the frozen end state are both "simple".
//
// Run with:
//
//	go run ./examples/complexity
package main

import (
	"fmt"
	"log"

	sops "repro"
)

func main() {
	// An organising 2-type collective.
	r := sops.MustMatrix([][]float64{
		{1.5, 4.0},
		{4.0, 2.0},
	})
	cfg := sops.SimConfig{
		N:      16,
		Types:  sops.TypesRoundRobin(16, 2),
		Force:  sops.MustF1(sops.ConstantMatrix(2, 1), r),
		Cutoff: 8,
	}
	ens, err := sops.RunEnsemble(sops.EnsembleConfig{
		Sim: cfg, M: 96, Steps: 240, RecordEvery: 4, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Measure 1: the paper's multi-information (on a coarser grid of the
	// same ensemble via a fresh pipeline — reuse the raw ensemble).
	res, err := sops.MeasureSelfOrganization(sops.Pipeline{
		Name: "mi",
		Ensemble: sops.EnsembleConfig{
			Sim: cfg, M: 96, Steps: 240, RecordEvery: 40, Seed: 31,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Measure 2: windowed statistical complexity of the motion symbols.
	profile, err := sops.SymbolicComplexityProfile(ens, 10, 4, 0.08,
		sops.StatComplexOptions{MaxHistory: 1, MinCount: 30})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multi-information of aligned observers (the paper's measure):")
	for i, mi := range res.MI {
		fmt.Printf("  t=%3d  I = %6.2f bits\n", res.Times[i], mi)
	}
	fmt.Println("\nwindowed statistical complexity of symbolised motion (the alternative):")
	fmt.Printf("%14s %10s %10s %8s\n", "window", "C (bits)", "h (bits)", "states")
	for _, p := range profile {
		fmt.Printf("  [%4d,%4d] %10.3f %10.3f %8d\n", p.StartStep, p.EndStep, p.C, p.H, p.States)
	}
	fmt.Println(`
Reading the output: the multi-information rises as the ensemble's shapes
converge, because it measures correlation ACROSS runs. The statistical
complexity looks WITHIN runs: it is low in the initial random phase
(isotropic diffusion is one causal state) and jumps once the collective
binds and the motion acquires persistent structure. The two measures probe
different things — exactly the paper's Sec. 3/7.1 point that its
observer-based multi-information is not the same notion as
statistical-complexity-based self-organization.`)
}
