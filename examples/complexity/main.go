// Two measures of self-organization side by side (Sec. 3): the paper's
// multi-information of shape-invariant observers against the statistical
// complexity of the symbolised particle dynamics (the ε-machine-based
// alternative of Shalizi that the paper discusses and departs from).
//
// Sec. 7.1 predicts their disagreement on a crystallising collective: the
// multi-information stays low for a uniform collective settling into a
// unique grid (no shape variety), while during the transient the motion is
// structured; once frozen, both measures drop — the random initial phase
// and the frozen end state are both "simple".
//
// Both measures consume the same declarative sops.Spec family: the raw
// ensemble for the symbolic profile comes from Session.Ensemble (the
// simulation stage alone), the MI curve from Session.Run.
//
// Run with:
//
//	go run ./examples/complexity [-scale quick|paper|test]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	sops "repro"
)

func main() {
	scale := flag.String("scale", "", "ensemble scale preset (quick|paper|test); empty keeps the example's own sizes")
	flag.Parse()
	ctx := context.Background()

	// An organising 2-type collective.
	r := sops.MustMatrix([][]float64{
		{1.5, 4.0},
		{4.0, 2.0},
	})
	cfg := sops.SimConfig{
		N:      16,
		Types:  sops.TypesRoundRobin(16, 2),
		Force:  sops.MustF1(sops.ConstantMatrix(2, 1), r),
		Cutoff: 8,
	}

	// Fine recording grid for the motion symbols, coarse grid for the MI
	// curve — two specs over the same collective and seed.
	fine := sops.WithEnsemble(96, 240, 4)
	coarse := sops.WithEnsemble(96, 240, 40)
	if *scale != "" {
		fine, coarse = sops.WithScale(*scale), sops.WithScale(*scale)
	}
	ensSpec, err := sops.NewSpec("complexity-symbols", sops.WithSim(cfg), fine, sops.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}
	miSpec, err := sops.NewSpec("complexity-mi", sops.WithSim(cfg), coarse, sops.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}

	session := sops.NewSession()
	ens, err := session.Ensemble(ctx, ensSpec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.Run(ctx, miSpec)
	if err != nil {
		log.Fatal(err)
	}

	// Measure 2: windowed statistical complexity of the motion symbols.
	// The window adapts to the recorded grid so the example runs at any
	// scale preset.
	windowFrames := 10
	if n := len(ens.Times()); windowFrames > n {
		windowFrames = n
	}
	profile, err := sops.SymbolicComplexityProfile(ens, windowFrames, 4, 0.08,
		sops.StatComplexOptions{MaxHistory: 1, MinCount: 30})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multi-information of aligned observers (the paper's measure):")
	for i, mi := range res.MI {
		fmt.Printf("  t=%3d  I = %6.2f bits\n", res.Times[i], mi)
	}
	fmt.Println("\nwindowed statistical complexity of symbolised motion (the alternative):")
	fmt.Printf("%14s %10s %10s %8s\n", "window", "C (bits)", "h (bits)", "states")
	for _, p := range profile {
		fmt.Printf("  [%4d,%4d] %10.3f %10.3f %8d\n", p.StartStep, p.EndStep, p.C, p.H, p.States)
	}
	fmt.Println(`
Reading the output: the multi-information rises as the ensemble's shapes
converge, because it measures correlation ACROSS runs. The statistical
complexity looks WITHIN runs: it is low in the initial random phase
(isotropic diffusion is one causal state) and jumps once the collective
binds and the motion acquires persistent structure. The two measures probe
different things — exactly the paper's Sec. 3/7.1 point that its
observer-based multi-information is not the same notion as
statistical-complexity-based self-organization.`)
}
