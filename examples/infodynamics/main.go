// Information dynamics between particles — the paper's future-work
// direction (Sec. 7.3: "the methods developed in [Lizier et al.] promise
// to furnish tools to investigate the information dynamics between
// individual particles over time; we tried to measure the information
// transfer between particles, but so far the results are still
// inconclusive").
//
// This example takes that next step with the tooling the repository adds:
// transfer entropy TE(Y→X) = I(X_{t+1}; Y_t | X_t) and active information
// storage A(X) = I(X_{t+1}; X_t), estimated with a Frenzel–Pompe k-NN
// conditional MI estimator on raw (identity-preserving) trajectories.
// It also tracks the paper's Sec. 6 entropy narrative: the joint entropy
// of the organising collective falls faster than the marginal entropies.
//
// Every workload is a declarative sops.Spec: the trajectory ensembles
// come from Session.Ensemble, the entropy profile from Session.Run with
// the estimator block's trackEntropies switch.
//
// Run with:
//
//	go run ./examples/infodynamics [-scale quick|paper|test]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	sops "repro"
)

func main() {
	scale := flag.String("scale", "", "ensemble scale preset (quick|paper|test); empty keeps the example's own sizes")
	flag.Parse()
	ctx := context.Background()
	session := sops.NewSession()

	// A 3-type adhesive collective (organising) vs a non-interacting
	// control (cut-off below any pair distance).
	r := sops.MustMatrix([][]float64{
		{1.5, 3.5, 3.0},
		{3.5, 1.8, 2.5},
		{3.0, 2.5, 2.0},
	})
	organising := sops.SimConfig{
		N:      18,
		Force:  sops.MustF1(sops.ConstantMatrix(3, 1), r),
		Cutoff: 6,
	}
	control := organising
	control.Cutoff = 1e-9
	control.InitRadius = 60

	for _, tc := range []struct {
		name string
		cfg  sops.SimConfig
	}{{"organising", organising}, {"non-interacting control", control}} {
		ensemble := sops.WithEnsemble(32, 120, 4)
		if *scale != "" {
			ensemble = sops.WithScale(*scale)
		}
		spec, err := sops.NewSpec(tc.name, sops.WithSim(tc.cfg), ensemble, sops.WithSeed(21))
		if err != nil {
			log.Fatal(err)
		}
		ens, err := session.Ensemble(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		// Transfer entropy between two same-type neighbours and the
		// storage of a single particle.
		centred := tc.name == "organising" // centring a scattered control couples it spuriously
		pt, err := sops.MeasurePairTransfer(ens, 0, 3, 4)
		if err != nil {
			log.Fatal(err)
		}
		if !centred {
			ta := sops.ParticleTrajectories(ens, 0, false)
			tb := sops.ParticleTrajectories(ens, 3, false)
			te, err := sops.TransferEntropy(tb, ta, 4)
			if err != nil {
				log.Fatal(err)
			}
			pt.TE = te
			te, err = sops.TransferEntropy(ta, tb, 4)
			if err != nil {
				log.Fatal(err)
			}
			pt.TEReverse = te
		}
		ais, err := sops.ActiveStorage(sops.ParticleTrajectories(ens, 0, centred), 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", tc.name)
		fmt.Printf("  TE(particle 0 → 3) = %.3f bits, TE(3 → 0) = %.3f bits\n", pt.TE, pt.TEReverse)
		fmt.Printf("  active storage of particle 0 = %.3f bits\n\n", ais)
	}

	// Entropy narrative of Sec. 6: run the measurement pipeline with
	// entropy tracking. Differential-entropy estimation suffers the
	// curse of dimensionality much harder than the KSG difference form,
	// so this diagnostic is run on a small collective (joint dimension
	// 2n = 12) with a larger ensemble.
	small := sops.SimConfig{
		N: 6,
		Force: sops.MustF1(sops.ConstantMatrix(2, 1), sops.MustMatrix([][]float64{
			{1.5, 4.0},
			{4.0, 2.0},
		})),
		Types:  sops.TypesRoundRobin(6, 2),
		Cutoff: 8,
	}
	ensemble := sops.WithEnsemble(512, 150, 30)
	if *scale != "" {
		ensemble = sops.WithScale(*scale)
	}
	entropySpec, err := sops.NewSpec("entropy-narrative",
		sops.WithSim(small),
		ensemble,
		sops.WithSeed(22),
		sops.WithEntropyTracking(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := session.Run(ctx, entropySpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("entropy evolution (bits), Sec. 6: joint falls faster than the marginal sum:")
	fmt.Printf("%6s %14s %14s %14s\n", "t", "sum marginals", "joint", "difference=MI")
	for i, p := range res.Entropies {
		fmt.Printf("%6d %14.2f %14.2f %14.2f\n", res.Times[i], p.MarginalSum, p.Joint, p.MultiInfo())
	}
	first, last := res.Entropies[0], res.Entropies[len(res.Entropies)-1]
	fmt.Printf("\nmarginal sum fell by %.2f bits; joint fell by %.2f bits (faster) => MI rose.\n",
		first.MarginalSum-last.MarginalSum, first.Joint-last.Joint)
}
