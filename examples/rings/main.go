// Concentric rings and residual degrees of freedom (Figs. 5 & 7): a
// single-type F¹ collective whose cut-off radius exceeds twice the
// preferred distance settles into two concentric regular polygons. The
// rotation of the inner polygon relative to the outer one remains a free
// parameter — and exactly that remaining degree of freedom makes the
// single-type system measurably self-organizing (a relatively high MI for
// one type, Sec. 6).
//
// The experiment is a declarative sops.Spec run through a sops.Session;
// `-scale test` shrinks it to CI size.
//
// Run with:
//
//	go run ./examples/rings [-scale quick|paper|test]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	sops "repro"
)

func main() {
	scale := flag.String("scale", "", "ensemble scale preset (quick|paper|test); empty keeps the example's own sizes")
	flag.Parse()

	cfg := sops.SimConfig{
		N:      20,
		Force:  sops.MustF1(sops.ConstantMatrix(1, 1), sops.ConstantMatrix(1, 2)),
		Cutoff: 5, // > 2·r = 4: the two-ring regime
	}
	ensemble := sops.WithEnsemble(160, 250, 25)
	if *scale != "" {
		ensemble = sops.WithScale(*scale)
	}
	spec, err := sops.NewSpec("rings",
		sops.WithSim(cfg),
		ensemble,
		sops.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sops.NewSession().Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	chart := &sops.Chart{Title: "single-type rings: I(W1,...,W20) over time (Fig. 5)", XLabel: "t", YLabel: "bits"}
	chart.Add("I", sops.FloatTimes(res.Times), res.MI)
	fmt.Print(chart.Render(64, 14))
	fmt.Printf("ΔI = %.2f bits for ONE type — high for a uniform collective (Sec. 6)\n\n", res.DeltaI())

	// Fig. 7's diagnostic: pool the aligned final positions of every
	// sample per observer slot and compare positional scatter of the
	// outer ring (well pinned by alignment) against the inner ring
	// (free rotation smears it).
	ds := res.Observers.Datasets[len(res.Observers.Datasets)-1]
	m, n := ds.NumSamples(), ds.NumVars()
	radius := make([]float64, n)
	scatter := make([]float64, n)
	for v := 0; v < n; v++ {
		var mx, my, mr float64
		for s := 0; s < m; s++ {
			x := ds.Var(s, v)
			mx += x[0]
			my += x[1]
			mr += math.Hypot(x[0], x[1])
		}
		mx, my = mx/float64(m), my/float64(m)
		radius[v] = mr / float64(m)
		var rms float64
		for s := 0; s < m; s++ {
			x := ds.Var(s, v)
			rms += (x[0]-mx)*(x[0]-mx) + (x[1]-my)*(x[1]-my)
		}
		scatter[v] = math.Sqrt(rms / float64(m))
	}
	// Median radius splits inner and outer ring.
	med := median(radius)
	var innerScatter, outerScatter []float64
	for v := 0; v < n; v++ {
		if radius[v] < med {
			innerScatter = append(innerScatter, scatter[v])
		} else {
			outerScatter = append(outerScatter, scatter[v])
		}
	}
	fmt.Printf("outer-ring per-slot scatter: %.3f (tight clusters in Fig. 7)\n", mean(outerScatter))
	fmt.Printf("inner-ring per-slot scatter: %.3f (smeared by the free rotation)\n", mean(innerScatter))
	if mean(innerScatter) > mean(outerScatter) {
		fmt.Println("=> inner ring scatters more: the paper's residual degree of freedom, reproduced.")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}
