// Quickstart: simulate a 3-type adhesive particle collective and measure
// its self-organization as the increase of multi-information between the
// aligned per-particle observer variables (Harder & Polani 2012, Sec. 3.1).
//
// The experiment is described once, declaratively, as a sops.Spec —
// validated up front, JSON-serializable, fingerprinted — and executed
// through a sops.Session, the cancellable handle that owns the worker
// budget. `-scale test` shrinks the ensemble to CI size (this is what the
// examples CI job runs); the default reproduces the documented curves.
//
// Run with:
//
//	go run ./examples/quickstart [-scale quick|paper|test]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	sops "repro"
)

func main() {
	scale := flag.String("scale", "", "ensemble scale preset (quick|paper|test); empty keeps the example's own sizes")
	flag.Parse()

	// Differential adhesion: same-type pairs prefer to sit closer than
	// cross-type pairs, the classic cell-sorting setup of Sec. 1.
	r := sops.MustMatrix([][]float64{
		{1.5, 3.5, 3.0},
		{3.5, 1.8, 2.5},
		{3.0, 2.5, 2.0},
	})
	cfg := sops.SimConfig{
		N:      30,
		Force:  sops.MustF1(sops.ConstantMatrix(3, 1), r),
		Cutoff: 6,
	}

	// The ensemble grid comes from the explicit numbers, or from the
	// -scale preset when one is chosen.
	ensemble := sops.WithEnsemble(128 /* independent runs */, 200 /* t_max */, 20)
	if *scale != "" {
		ensemble = sops.WithScale(*scale)
	}
	spec, err := sops.NewSpec("quickstart",
		sops.WithSim(cfg),
		ensemble,
		sops.WithSeed(1),
		// The pipeline streams by default and drops raw trajectories;
		// keep them here because we print a final configuration below.
		sops.WithRetainEnsemble(),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sops.NewSession().Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multi-information of the aligned observer variables (bits):")
	chart := &sops.Chart{Title: "self-organization = increasing I(W1,...,Wn)", XLabel: "t", YLabel: "bits"}
	chart.Add("I", sops.FloatTimes(res.Times), res.MI)
	fmt.Print(chart.Render(64, 14))

	fmt.Printf("\nI(t=0) = %.2f bits, I(t=%d) = %.2f bits, ΔI = %.2f bits\n",
		res.MI[0], res.Times[len(res.Times)-1], res.FinalMI(), res.DeltaI())
	if res.DeltaI() > 0.5 {
		fmt.Println("=> the collective self-organizes (paper Sec. 3.1 criterion).")
	} else {
		fmt.Println("=> no clear self-organization detected.")
	}

	fmt.Println("\na final configuration from the ensemble (digits = types):")
	final := res.Ensemble.Trajs[0].Frames[len(res.Ensemble.Trajs[0].Frames)-1]
	fmt.Print(sops.ASCIIScatter(final, res.Ensemble.Types, 56, 20))
}
