// Quickstart: simulate a 3-type adhesive particle collective and measure
// its self-organization as the increase of multi-information between the
// aligned per-particle observer variables (Harder & Polani 2012, Sec. 3.1).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	sops "repro"
)

func main() {
	// Differential adhesion: same-type pairs prefer to sit closer than
	// cross-type pairs, the classic cell-sorting setup of Sec. 1.
	r := sops.MustMatrix([][]float64{
		{1.5, 3.5, 3.0},
		{3.5, 1.8, 2.5},
		{3.0, 2.5, 2.0},
	})
	cfg := sops.SimConfig{
		N:      30,
		Force:  sops.MustF1(sops.ConstantMatrix(3, 1), r),
		Cutoff: 6,
	}

	res, err := sops.MeasureSelfOrganization(sops.Pipeline{
		Name: "quickstart",
		Ensemble: sops.EnsembleConfig{
			Sim:         cfg,
			M:           128, // independent simulation runs
			Steps:       200, // t_max
			RecordEvery: 20,
			Seed:        1,
		},
		// The pipeline streams by default and drops raw trajectories;
		// keep them here because we print a final configuration below.
		RetainEnsemble: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multi-information of the aligned observer variables (bits):")
	chart := &sops.Chart{Title: "self-organization = increasing I(W1,...,Wn)", XLabel: "t", YLabel: "bits"}
	chart.Add("I", sops.FloatTimes(res.Times), res.MI)
	fmt.Print(chart.Render(64, 14))

	fmt.Printf("\nI(t=0) = %.2f bits, I(t=%d) = %.2f bits, ΔI = %.2f bits\n",
		res.MI[0], res.Times[len(res.Times)-1], res.FinalMI(), res.DeltaI())
	if res.DeltaI() > 0.5 {
		fmt.Println("=> the collective self-organizes (paper Sec. 3.1 criterion).")
	} else {
		fmt.Println("=> no clear self-organization detected.")
	}

	fmt.Println("\na final configuration from the ensemble (digits = types):")
	final := res.Ensemble.Trajs[0].Frames[len(res.Ensemble.Trajs[0].Frames)-1]
	fmt.Print(sops.ASCIIScatter(final, res.Ensemble.Types, 56, 20))
}
