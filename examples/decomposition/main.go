// Decomposition of self-organization (Sec. 3.1, Eq. 5; Fig. 11): the
// multi-information of all observers splits exactly into the
// multi-information BETWEEN coarse-grained per-type observers plus the
// multi-information WITHIN each type. The paper's finding: the relative
// contributions fluctuate early, then settle to stable fractions while the
// total keeps growing.
//
// The experiment is a declarative sops.Spec (note WithDecomposition — the
// estimator block's decompose switch) run through a sops.Session;
// `-scale test` shrinks it to CI size.
//
// Run with:
//
//	go run ./examples/decomposition [-scale quick|paper|test]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	sops "repro"
)

func main() {
	scale := flag.String("scale", "", "ensemble scale preset (quick|paper|test); empty keeps the example's own sizes")
	flag.Parse()

	l := 4
	draw := sops.SplitRNG(2012, 11)
	f := sops.MustF1(sops.ConstantMatrix(l, 1), sops.RandomMatrixIn(l, 2, 8, draw))
	ensemble := sops.WithEnsemble(128, 250, 25)
	if *scale != "" {
		ensemble = sops.WithScale(*scale)
	}
	spec, err := sops.NewSpec("decomposition",
		sops.WithSim(sops.SimConfig{N: 20, Types: sops.TypesRoundRobin(20, l), Force: f, Cutoff: 15}),
		ensemble,
		sops.WithSeed(5),
		sops.WithDecomposition(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sops.NewSession().Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("normalized decomposition of I(W1,...,Wn) over time (fractions of the total):")
	fmt.Printf("%6s %10s %10s", "t", "total", "between")
	for g := 0; g < l; g++ {
		fmt.Printf("  type-%d", g)
	}
	fmt.Println()
	for ti, dec := range res.Decomp {
		norm := dec.Normalized()
		fmt.Printf("%6d %10.3f %10.3f", res.Times[ti], dec.Total(), norm.Between)
		for _, w := range norm.Within {
			fmt.Printf("  %6.3f", w)
		}
		fmt.Println()
	}

	chart := &sops.Chart{Title: "decomposition fractions over time", XLabel: "t", YLabel: "fraction"}
	xs := sops.FloatTimes(res.Times)
	between := make([]float64, len(res.Times))
	for ti, dec := range res.Decomp {
		between[ti] = dec.Normalized().Between
	}
	chart.Add("between-types", xs, between)
	for g := 0; g < l; g++ {
		ys := make([]float64, len(res.Times))
		for ti, dec := range res.Decomp {
			ys[ti] = dec.Normalized().Within[g]
		}
		chart.Add(fmt.Sprintf("type %d", g), xs, ys)
	}
	fmt.Print(chart.Render(72, 16))
	fmt.Println(`
Reading the output (paper Sec. 6.1.1): organization appears on ALL levels;
after an initial phase the fractions settle even though the total
multi-information (column 2) is still increasing.`)
}
