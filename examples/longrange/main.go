// Long-range interactions and self-organization (the Fig. 9/10 story,
// Secs. 6.1, 7.2): with as many types as particles, the amount of
// self-organization a collective can reach is governed by the interaction
// cut-off radius — long-range interactions let information spread and
// multi-information grow; strictly local interactions throttle it.
//
// This example runs a reduced version of the paper's sweep: 20 particles
// with 20 distinct types under F¹ at rc ∈ {2.5, 7.5, ∞} and compares it
// against a 5-type collective at the same radii.
//
// Run with:
//
//	go run ./examples/longrange
package main

import (
	"fmt"
	"log"
	"math"

	sops "repro"
)

func run(l int, rc float64, seed uint64) (*sops.Result, error) {
	draw := sops.SplitRNG(seed, uint64(l)*31+uint64(math.Float64bits(rc)%1000))
	f := sops.MustF1(sops.ConstantMatrix(l, 1), sops.RandomMatrixIn(l, 2, 8, draw))
	return sops.MeasureSelfOrganization(sops.Pipeline{
		Name: fmt.Sprintf("l=%d rc=%g", l, rc),
		Ensemble: sops.EnsembleConfig{
			Sim:         sops.SimConfig{N: 20, Types: sops.TypesRoundRobin(20, l), Force: f, Cutoff: rc},
			M:           128,
			Steps:       250,
			RecordEvery: 25,
			Seed:        seed,
		},
	})
}

func main() {
	radii := []float64{2.5, 7.5, math.Inf(1)}
	chart := &sops.Chart{
		Title:  "multi-information vs time: cut-off radius and type count (F1, n=20)",
		XLabel: "t",
		YLabel: "bits",
	}
	fmt.Println("running 6 pipelines (2 type counts x 3 radii)...")
	for _, l := range []int{20, 5} {
		for _, rc := range radii {
			res, err := run(l, rc, 42)
			if err != nil {
				log.Fatal(err)
			}
			name := fmt.Sprintf("l=%d rc=%g", l, rc)
			if math.IsInf(rc, 1) {
				name = fmt.Sprintf("l=%d rc=inf", l)
			}
			chart.Add(name, sops.FloatTimes(res.Times), res.MI)
			fmt.Printf("%-16s ΔI = %6.2f bits\n", name, res.DeltaI())
		}
	}
	fmt.Print(chart.Render(72, 18))
	fmt.Println(`
Paper's expected shape (Secs. 6.1, 7.2):
  * with l=20 (all particles distinct), ΔI grows with rc — long-range
    interactions produce statistical structure even without visible
    spatial patterns;
  * with local interactions (small rc), the l=5 collective organizes
    MORE than the l=20 one: homogeneous same-type clusters restore
    long-range information flow (emergence of visible structures).`)
}
