// Long-range interactions and self-organization (the Fig. 9/10 story,
// Secs. 6.1, 7.2): with as many types as particles, the amount of
// self-organization a collective can reach is governed by the interaction
// cut-off radius — long-range interactions let information spread and
// multi-information grow; strictly local interactions throttle it.
//
// This example runs a reduced version of the paper's sweep: 20 particles
// with 20 distinct types under F¹ at rc ∈ {2.5, 7.5, ∞} and compares it
// against a 5-type collective at the same radii. The six cells are six
// declarative sops.Specs executed as ONE Session.Sweep — concurrently
// under the session's shared worker budget, in spec order, bit-identical
// to running them one by one.
//
// Run with:
//
//	go run ./examples/longrange [-scale quick|paper|test]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"

	sops "repro"
)

func cellSpec(l int, rc float64, seed uint64, scale string) (sops.Spec, error) {
	draw := sops.SplitRNG(seed, uint64(l)*31+uint64(math.Float64bits(rc)%1000))
	f := sops.MustF1(sops.ConstantMatrix(l, 1), sops.RandomMatrixIn(l, 2, 8, draw))
	name := fmt.Sprintf("l=%d rc=%g", l, rc)
	if math.IsInf(rc, 1) {
		name = fmt.Sprintf("l=%d rc=inf", l)
	}
	ensemble := sops.WithEnsemble(128, 250, 25)
	if scale != "" {
		ensemble = sops.WithScale(scale)
	}
	return sops.NewSpec(name,
		sops.WithSim(sops.SimConfig{N: 20, Types: sops.TypesRoundRobin(20, l), Force: f, Cutoff: rc}),
		ensemble,
		sops.WithSeed(seed),
	)
}

func main() {
	scale := flag.String("scale", "", "ensemble scale preset (quick|paper|test); empty keeps the example's own sizes")
	flag.Parse()

	radii := []float64{2.5, 7.5, math.Inf(1)}
	var specs []sops.Spec
	for _, l := range []int{20, 5} {
		for _, rc := range radii {
			spec, err := cellSpec(l, rc, 42, *scale)
			if err != nil {
				log.Fatal(err)
			}
			specs = append(specs, spec)
		}
	}

	fmt.Printf("running %d pipelines (2 type counts x 3 radii) as one budgeted sweep...\n", len(specs))
	results, err := sops.NewSession().Sweep(context.Background(), specs...)
	if err != nil {
		log.Fatal(err)
	}

	chart := &sops.Chart{
		Title:  "multi-information vs time: cut-off radius and type count (F1, n=20)",
		XLabel: "t",
		YLabel: "bits",
	}
	for i, res := range results {
		chart.Add(specs[i].Name, sops.FloatTimes(res.Times), res.MI)
		fmt.Printf("%-16s ΔI = %6.2f bits\n", specs[i].Name, res.DeltaI())
	}
	fmt.Print(chart.Render(72, 18))
	fmt.Println(`
Paper's expected shape (Secs. 6.1, 7.2):
  * with l=20 (all particles distinct), ΔI grows with rc — long-range
    interactions produce statistical structure even without visible
    spatial patterns;
  * with local interactions (small rc), the l=5 collective organizes
    MORE than the l=20 one: homogeneous same-type clusters restore
    long-range information flow (emergence of visible structures).`)
}
