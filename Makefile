# Developer entry points. CI (ci.yml) runs the same commands.

GO ?= go

.PHONY: build test lint fmt bench

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# lint builds the sopslint multichecker (internal/lint: mapiter,
# rngsource, walltime, ctxflow, tokenpair, goroleak, chansend,
# dettaint) and runs it over the module through `go vet -vettool`,
# exactly as CI does. Standalone runs — no vet build cache, handy while
# iterating on an analyzer — are `go run ./cmd/sopslint ./...`
# (add -json for machine-readable output).
lint:
	$(GO) build -o bin/sopslint ./cmd/sopslint
	$(GO) vet -vettool=$(CURDIR)/bin/sopslint ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
