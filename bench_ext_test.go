package sops_test

import (
	"bytes"
	"testing"

	"repro/internal/align"
	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/infodynamics"
	"repro/internal/infotheory"
	"repro/internal/kmeans"
	"repro/internal/observer"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/statcomplex"
	"repro/internal/vec"
)

// Benchmarks for the extension subsystems (Secs. 3, 6, 7.1, 7.3 tooling)
// and the remaining infrastructure paths.

func benchEnsemble(b *testing.B, n, m, steps, every int) *sim.Ensemble {
	b.Helper()
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim: sim.Config{
			N:      n,
			Types:  sim.TypesRoundRobin(n, 2),
			Force:  forces.MustF1(forces.ConstantMatrix(2, 1), forces.ConstantMatrix(2, 2)),
			Cutoff: 6,
		},
		M:           m,
		Steps:       steps,
		RecordEvery: every,
		Seed:        benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ens
}

func BenchmarkTransferEntropy(b *testing.B) {
	ens := benchEnsemble(b, 6, 16, 60, 2)
	ta := infodynamics.ParticleTrajectories(ens, 0, true)
	tb := infodynamics.ParticleTrajectories(ens, 1, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infodynamics.TransferEntropy(ta, tb, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActiveStorage(b *testing.B) {
	ens := benchEnsemble(b, 6, 16, 60, 2)
	ta := infodynamics.ParticleTrajectories(ens, 0, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infodynamics.ActiveStorage(ta, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKLEntropy(b *testing.B) {
	ds := experiment.SampleEquicorrelatedGaussians(400, 6, 0.5, rngx.New(3))
	all := []int{0, 1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infotheory.DifferentialEntropyKL(ds, all, 4)
	}
}

func BenchmarkEntropyProfile(b *testing.B) {
	ds := experiment.SampleEquicorrelatedGaussians(300, 6, 0.5, rngx.New(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infotheory.Entropies(ds, 4)
	}
}

func BenchmarkEpsilonMachineReconstruction(b *testing.B) {
	rng := rngx.New(7)
	seqs := make([][]int, 16)
	for s := range seqs {
		seq := make([]int, 2000)
		prev := 0
		for i := range seq {
			if prev == 1 {
				seq[i] = 0
			} else if rng.Float64() < 0.5 {
				seq[i] = 1
			}
			prev = seq[i]
		}
		seqs[s] = seq
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := statcomplex.Reconstruct(seqs, statcomplex.Options{Alphabet: 2, MaxHistory: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymbolicComplexityProfile(b *testing.B) {
	ens := benchEnsemble(b, 10, 16, 60, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SymbolicComplexityProfile(ens, 10, 4, 0.05,
			statcomplex.Options{MaxHistory: 1, MinCount: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnsemblePersistence(b *testing.B) {
	ens := benchEnsemble(b, 20, 32, 50, 10)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := ens.Encode(&buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	var buf bytes.Buffer
	if err := ens.Encode(&buf); err != nil {
		b.Fatal(err)
	}
	payload := buf.Bytes()
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			if _, err := sim.ReadEnsemble(bytes.NewReader(payload)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEnsembleSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchEnsemble(b, 20, 32, 100, 25)
	}
}

func BenchmarkAlignFrame(b *testing.B) {
	ens := benchEnsemble(b, 30, 48, 40, 40)
	frames := ens.FramesAt(len(ens.Times()) - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.AlignFrame(frames, ens.Types, align.FrameOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserverReduction(b *testing.B) {
	ens := benchEnsemble(b, 40, 32, 40, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := observer.FromEnsemble(ens, observer.Config{KMeansK: 4, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansCluster(b *testing.B) {
	rng := rngx.New(11)
	pts := make([]vec.Vec2, 300)
	for i := range pts {
		x, y := rng.UniformDisc(10)
		pts[i] = vec.Vec2{X: x, Y: y}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.Cluster(pts, 6, rngx.New(uint64(i)), kmeans.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
