package sops_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	sops "repro"
)

func sessionSpec(t *testing.T, name string, seed uint64) sops.Spec {
	t.Helper()
	r := sops.MustMatrix([][]float64{
		{1.5, 3.0, 2.5},
		{3.0, 1.5, 2.0},
		{2.5, 2.0, 1.8},
	})
	cfg := sops.SimConfig{
		N:      12,
		Force:  sops.MustF1(sops.ConstantMatrix(3, 1), r),
		Cutoff: 5,
	}
	sp, err := sops.NewSpec(name,
		sops.WithSim(cfg),
		sops.WithEnsemble(24, 30, 15),
		sops.WithSeed(seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestSessionRunMatchesLegacyEntryPoint extends the stream-equivalence
// contract to the Session path: Session.Run of a spec is bit-identical
// to MeasureSelfOrganization of the spec's pipeline (the documented
// legacy wrapper), for the same seed.
func TestSessionRunMatchesLegacyEntryPoint(t *testing.T) {
	sp := sessionSpec(t, "equiv", 1)
	p, err := sp.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sops.MeasureSelfOrganization(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sops.NewSession().Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Times, got.Times) || !reflect.DeepEqual(want.MI, got.MI) {
		t.Fatalf("Session.Run diverged from MeasureSelfOrganization:\nwant %v\ngot  %v", want.MI, got.MI)
	}
	if want.EquilibratedFraction != got.EquilibratedFraction {
		t.Fatalf("equilibrated fraction %v vs %v", want.EquilibratedFraction, got.EquilibratedFraction)
	}
}

// TestSessionSweepMatchesSerialRuns: a Session.Sweep equals running each
// spec alone, bit for bit, and reports progress events for every stage.
func TestSessionSweepMatchesSerialRuns(t *testing.T) {
	specs := []sops.Spec{
		sessionSpec(t, "s0", 1),
		sessionSpec(t, "s1", 2),
		sessionSpec(t, "s2", 3),
	}
	session := sops.NewSession(sops.WithWorkerBudget(2), sops.WithRunConcurrency(2))
	var samples, steps, runs atomic.Int64
	unsubscribe := session.Subscribe(func(ev sops.ProgressEvent) {
		switch ev.Kind {
		case sops.ProgressSampleSimulated:
			samples.Add(1)
		case sops.ProgressStepEstimated:
			steps.Add(1)
		case sops.ProgressRunDone:
			runs.Add(1)
		}
	})
	defer unsubscribe()
	got, err := session.Sweep(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		p, err := sp.Pipeline()
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.MI, got[i].MI) {
			t.Fatalf("sweep run %d diverged:\nwant %v\ngot  %v", i, want.MI, got[i].MI)
		}
	}
	if samples.Load() != 3*24 {
		t.Errorf("saw %d sample events, want %d", samples.Load(), 3*24)
	}
	if steps.Load() != 3*3 { // Times = {0, 15, 30}
		t.Errorf("saw %d step events, want %d", steps.Load(), 3*3)
	}
	if runs.Load() != 3 {
		t.Errorf("saw %d run-done events, want 3", runs.Load())
	}

	// Duplicate and missing names are rejected up front.
	if _, err := session.Sweep(context.Background(), sops.Spec{}); err == nil {
		t.Error("nameless sweep spec accepted")
	}
}

// TestSessionSweepCancellation: cancelling Session.Sweep mid-run returns
// context.Canceled, keeps the finished runs' checkpoints valid, and a
// re-issued sweep resumes to bit-identical results — the public-API face
// of the sweep cancellation contract.
func TestSessionSweepCancellation(t *testing.T) {
	names := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	specs := make([]sops.Spec, len(names))
	for i, n := range names {
		specs[i] = sessionSpec(t, n, uint64(i+1))
	}
	dir := t.TempDir()

	ctx, cancel := context.WithCancel(context.Background())
	session := sops.NewSession(sops.WithCheckpointDir(dir), sops.WithRunConcurrency(1))
	var done atomic.Int32
	unsub := session.Subscribe(func(ev sops.ProgressEvent) {
		if ev.Kind == sops.ProgressRunDone && done.Add(1) == 2 {
			cancel()
		}
	})
	_, err := session.Sweep(ctx, specs...)
	unsub()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if int(done.Load()) >= len(specs) {
		t.Fatal("sweep finished before cancellation landed")
	}

	// Resume with a fresh session over the same directory: results must
	// equal an uninterrupted serial reference, restoring at least the
	// completed runs.
	resumed := sops.NewSession(sops.WithCheckpointDir(dir))
	var restored atomic.Int32
	unsub = resumed.Subscribe(func(ev sops.ProgressEvent) {
		if ev.Kind == sops.ProgressRunDone && ev.FromCheckpoint {
			restored.Add(1)
		}
	})
	got, err := resumed.Sweep(context.Background(), specs...)
	unsub()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Load() < 2 {
		t.Fatalf("resume restored %d checkpoints, want >= 2", restored.Load())
	}
	for i, sp := range specs {
		p, err := sp.Pipeline()
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.MI, got[i].MI) {
			t.Fatalf("resumed run %d diverged:\nwant %v\ngot  %v", i, want.MI, got[i].MI)
		}
	}
}

// TestSessionSweepsStaleTempsOnStartup: a process killed between
// CreateTemp and the rename in the checkpoint writer leaves .tmp-run-*
// remnants in the checkpoint directory. Constructing a Session over that
// directory must remove them, keep the completed checkpoints intact, and
// resume from those checkpoints exactly as if the crash never happened.
func TestSessionSweepsStaleTempsOnStartup(t *testing.T) {
	specs := []sops.Spec{
		sessionSpec(t, "k0", 1),
		sessionSpec(t, "k1", 2),
	}
	dir := t.TempDir()

	// First life: complete the sweep, so checkpoints exist.
	first := sops.NewSession(sops.WithCheckpointDir(dir))
	want, err := first.Sweep(context.Background(), specs...)
	if err != nil {
		t.Fatal(err)
	}

	// The kill: plant the remnants an interrupted writer leaves — temp
	// files that never reached their rename, including one holding a
	// truncated half-checkpoint.
	for _, name := range []string{".tmp-run-1234567", ".tmp-run-7654321"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: a fresh session over the same directory sweeps the
	// remnants at construction time.
	resumed := sops.NewSession(sops.WithCheckpointDir(dir))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-run-") {
			t.Errorf("stale temp %s survived session startup", e.Name())
		}
	}
	if n := len(entries); n != len(specs) {
		t.Errorf("checkpoint dir has %d entries after startup sweep, want %d completed checkpoints", n, len(specs))
	}

	// The completed checkpoints still resume: every run restores rather
	// than recomputes, bit-identically.
	var restored atomic.Int32
	unsub := resumed.Subscribe(func(ev sops.ProgressEvent) {
		if ev.Kind == sops.ProgressRunDone && ev.FromCheckpoint {
			restored.Add(1)
		}
	})
	got, err := resumed.Sweep(context.Background(), specs...)
	unsub()
	if err != nil {
		t.Fatal(err)
	}
	if int(restored.Load()) != len(specs) {
		t.Fatalf("resume restored %d checkpoints, want %d", restored.Load(), len(specs))
	}
	for i := range specs {
		if !reflect.DeepEqual(want[i].MI, got[i].MI) {
			t.Fatalf("restored run %d diverged:\nwant %v\ngot  %v", i, want[i].MI, got[i].MI)
		}
	}
}

// TestSessionSystemAndEnsemble: the non-pipeline session entry points
// reproduce the raw building blocks.
func TestSessionSystemAndEnsemble(t *testing.T) {
	sp := sessionSpec(t, "sys", 4)
	session := sops.NewSession()

	sys, err := session.System(sp)
	if err != nil {
		t.Fatal(err)
	}
	sys.Step()
	if len(sys.Positions()) != 12 {
		t.Fatalf("system has %d particles", len(sys.Positions()))
	}

	ens, err := session.Ensemble(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := sp.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sops.RunEnsemble(p.Ensemble)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Trajs, ens.Trajs) {
		t.Fatal("Session.Ensemble diverged from RunEnsemble")
	}

	// A cancelled context is honoured immediately.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := session.Ensemble(cancelled, sp); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := session.Run(cancelled, sp); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
