package sops_test

import (
	"math"
	"testing"

	sops "repro"
)

// TestQuickstartFlow exercises the documented public-API path end to end:
// build an interaction, run the measurement pipeline, observe a finite MI
// curve.
func TestQuickstartFlow(t *testing.T) {
	r := sops.MustMatrix([][]float64{
		{1.5, 3.0, 2.5},
		{3.0, 1.5, 2.0},
		{2.5, 2.0, 1.8},
	})
	cfg := sops.SimConfig{
		N:      12,
		Force:  sops.MustF1(sops.ConstantMatrix(3, 1), r),
		Cutoff: 5,
	}
	res, err := sops.MeasureSelfOrganization(sops.Pipeline{
		Name:     "facade",
		Ensemble: sops.EnsembleConfig{Sim: cfg, M: 24, Steps: 30, RecordEvery: 15, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MI) != 3 {
		t.Fatalf("MI = %v", res.MI)
	}
	for _, mi := range res.MI {
		if math.IsNaN(mi) || math.IsInf(mi, 0) {
			t.Fatalf("non-finite MI: %v", res.MI)
		}
	}
}

// TestSelfOrganizationDetected is the headline acceptance test of the whole
// repository: an adhesively differentiated collective must show increasing
// multi-information (self-organization per Sec. 3.1), clearly above its
// initial i.i.d. level.
func TestSelfOrganizationDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble too large for -short")
	}
	r := sops.MustMatrix([][]float64{
		{1.5, 4.0},
		{4.0, 2.0},
	})
	cfg := sops.SimConfig{
		N:      16,
		Types:  sops.TypesRoundRobin(16, 2),
		Force:  sops.MustF1(sops.ConstantMatrix(2, 1), r),
		Cutoff: 6,
	}
	res, err := sops.MeasureSelfOrganization(sops.Pipeline{
		Name:     "acceptance",
		Ensemble: sops.EnsembleConfig{Sim: cfg, M: 96, Steps: 150, RecordEvery: 150, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaI() < 1 {
		t.Fatalf("ΔI = %v bits; expected clear self-organization (> 1 bit)", res.DeltaI())
	}
}

// TestCompletelyRandomProcessShowsNoSelfOrganization is the paper's control
// (Sec. 3.1): for a non-interacting collective (pure noise), the measure
// must not detect self-organization.
func TestCompletelyRandomProcessShowsNoSelfOrganization(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble too large for -short")
	}
	// Particles far outside each other's cut-off radius never interact:
	// the dynamics are i.i.d. Brownian noise.
	cfg := sops.SimConfig{
		N:          12,
		Force:      sops.MustF1(sops.ConstantMatrix(1, 1), sops.ConstantMatrix(1, 1)),
		Cutoff:     1e-6,
		InitRadius: 50,
	}
	res, err := sops.MeasureSelfOrganization(sops.Pipeline{
		Name:     "control",
		Ensemble: sops.EnsembleConfig{Sim: cfg, M: 96, Steps: 150, RecordEvery: 150, Seed: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaI() > 1 {
		t.Fatalf("ΔI = %v bits on a non-interacting collective; expected ≈ 0", res.DeltaI())
	}
}

func TestFacadeEstimators(t *testing.T) {
	// The re-exported estimators must be callable and agree with their
	// internal definitions on a trivial dataset.
	xs := make([][]float64, 100)
	ys := make([][]float64, 100)
	rng := sops.NewRNG(5)
	for i := range xs {
		x := rng.NormFloat64()
		xs[i] = []float64{x}
		ys[i] = []float64{x + 0.1*rng.NormFloat64()}
	}
	// Strongly dependent pair: MI must be clearly positive.
	d := dataset(xs, ys)
	if mi := sops.MultiInfoKSG(d, 4); mi < 0 {
		t.Errorf("paper-variant KSG on dependent pair = %v", mi)
	}
	if mi := sops.MultiInfoKernel(d); mi < 0.5 {
		t.Errorf("kernel MI = %v, want clearly positive", mi)
	}
}

func dataset(xs, ys [][]float64) *sops.Dataset {
	d := newDataset(len(xs))
	for s := range xs {
		d.SetVar(s, 0, xs[s]...)
		d.SetVar(s, 1, ys[s]...)
	}
	return d
}

func newDataset(m int) *sops.Dataset {
	return sopsNewDataset(m)
}

// sopsNewDataset constructs through the infotheory package re-exported via
// the Dataset alias (aliases share the concrete type, so the internal
// constructor applies).
func sopsNewDataset(m int) *sops.Dataset {
	return sops.NewInfoDataset(m, []int{1, 1})
}
