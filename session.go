package sops

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/experiment"
	"repro/internal/infotheory"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/sweep/remote"
	"repro/internal/workpool"
)

// The declarative experiment description: one versioned, JSON-
// round-trippable Spec is what every entry point — library sessions, the
// four CLIs, and any future server — produces and consumes.
type (
	// Spec describes a full experiment: simulation, ensemble, observer,
	// estimator, scale preset, and optional sweep grid or scenario.
	Spec = spec.Spec
	// SpecSim, SpecEnsemble, SpecObserver, SpecEstimator and SpecSweep
	// are the Spec's JSON blocks.
	SpecSim       = spec.Sim
	SpecEnsemble  = spec.Ensemble
	SpecObserver  = spec.Observer
	SpecEstimator = spec.Estimator
	SpecSweep     = spec.Sweep
	// SpecError is one typed validation problem (field path + message);
	// Spec.Validate joins them with errors.Join.
	SpecError = spec.SpecError
	// SpecOption configures a Spec under construction (see NewSpec).
	SpecOption = spec.Option
	// UnknownEstimatorError reports an estimator kind outside
	// ValidEstimators.
	UnknownEstimatorError = experiment.UnknownEstimatorError
	// ProgressEvent is one unit of observable progress (sample simulated,
	// step estimated, run checkpointed/done) delivered to Session
	// subscribers.
	ProgressEvent = experiment.ProgressEvent
	// ProgressKind classifies a ProgressEvent.
	ProgressKind = experiment.ProgressKind
)

// SpecVersion is the current spec schema version.
const SpecVersion = spec.Version

// Progress event kinds.
const (
	ProgressSampleSimulated = experiment.ProgressSampleSimulated
	ProgressStepEstimated   = experiment.ProgressStepEstimated
	ProgressRunCheckpointed = experiment.ProgressRunCheckpointed
	ProgressRunDone         = experiment.ProgressRunDone
)

// Spec constructors and option funcs.
var (
	// NewSpec builds and validates a spec from options; MustSpec panics
	// on error (for static, known-good specs).
	NewSpec  = spec.New
	MustSpec = spec.MustNew
	// LoadSpec reads and validates a spec JSON file; ParseSpec decodes
	// bytes.
	LoadSpec  = spec.Load
	ParseSpec = spec.Parse
	// SpecFromPipeline captures an experiment pipeline as a fully
	// explicit single-run spec.
	SpecFromPipeline = spec.FromPipeline
	// Option funcs for NewSpec.
	WithScenario        = spec.WithScenario
	WithScale           = spec.WithScale
	WithSeed            = spec.WithSeed
	WithSim             = spec.WithSim
	WithEnsemble        = spec.WithEnsemble
	WithRetainEnsemble  = spec.WithRetainEnsemble
	WithObserver        = spec.WithObserver
	WithEstimator       = spec.WithEstimator
	WithDecomposition   = spec.WithDecomposition
	WithEntropyTracking = spec.WithEntropyTracking
	WithGrid            = spec.WithGrid
	WithGridForce       = spec.WithGridForce
	WithGridN           = spec.WithGridN
	WithRepeats         = spec.WithRepeats
	// ValidEstimators lists every estimator kind a Spec accepts.
	ValidEstimators = experiment.ValidEstimators
)

// Session is the long-lived execution handle of the API: it owns the
// shared worker budget every stage draws from, the estimator-engine pool
// recycled across runs, and the checkpoint directory sweeps resume from.
// Every method takes a context and stops within one token-grant when it
// is cancelled (map SIGINT to context cancellation in a CLI — the four
// bundled commands do); a cancelled Sweep keeps the checkpoints of the
// runs that finished, so re-issuing it resumes rather than restarts.
//
// A Session is safe for concurrent use; concurrent calls share the one
// budget, so the machine is never oversubscribed no matter how many
// experiments are in flight. The zero value is not usable — construct
// with NewSession.
type Session struct {
	budget      *workpool.Tokens
	concurrency int
	ckptDir     string
	engines     *infotheory.EnginePool
	store       sweep.ResultStore
	cacheBytes  int
	distProcs   int
	distSpawn   remote.SpawnFunc

	mu      sync.Mutex
	subs    map[int]func(ProgressEvent)
	nextSub int
}

// SessionOption configures NewSession.
type SessionOption func(*Session)

// WithWorkerBudget bounds the machine-wide active work of everything the
// session runs to n concurrently held tokens (0 = GOMAXPROCS): one token
// per simulated sample and per estimated step, across all in-flight runs.
func WithWorkerBudget(n int) SessionOption {
	return func(s *Session) { s.budget = workpool.NewTokens(n) }
}

// WithRunConcurrency bounds the number of in-flight pipeline runs of a
// Sweep (0 = GOMAXPROCS). It is a memory bound — each in-flight run holds
// its observer datasets — not a CPU bound; CPU is governed by the worker
// budget.
func WithRunConcurrency(n int) SessionOption {
	return func(s *Session) { s.concurrency = n }
}

// WithCheckpointDir enables sweep checkpointing: one versioned file per
// completed run, keyed by the spec fingerprint; runs whose file is
// already present are restored instead of executed.
func WithCheckpointDir(dir string) SessionOption {
	return func(s *Session) { s.ckptDir = dir }
}

// WithResultStore replaces the session's checkpoint store with a custom
// ResultStore implementation; it wins over WithCheckpointDir. Note that
// distributed workers (WithWorkerProcs) are separate processes reaching
// the store through the checkpoint directory — a custom in-process store
// is not visible to them, only to this session's pre-dispatch resume.
func WithResultStore(st ResultStore) SessionOption {
	return func(s *Session) { s.store = st }
}

// WithResultCache fronts the session's checkpoint store with an
// in-memory LRU of at most maxBytes of result payload: repeat resumes
// (regenerating figures over one grid) are served from memory without
// touching disk.
func WithResultCache(maxBytes int) SessionOption {
	return func(s *Session) { s.cacheBytes = maxBytes }
}

// WithWorkerProcs shards every session sweep across n worker processes
// (n <= 1 disables distribution): the session acts as coordinator,
// divides its worker budget among the children, streams their progress
// into the session's subscribers as one merged stream, and requeues the
// runs of any worker that dies. spawn starts worker i — use
// CommandSpawner with a binary exposing a worker mode (sopsweep
// -worker), or GoSpawner for an in-process harness. Combine with
// WithCheckpointDir so workers share the durable store; results are
// bit-identical to the local path either way.
func WithWorkerProcs(n int, spawn SweepSpawnFunc) SessionOption {
	return func(s *Session) {
		s.distProcs = n
		s.distSpawn = spawn
	}
}

// NewSession creates a session. With no options it budgets GOMAXPROCS
// workers, runs sweeps at GOMAXPROCS in-flight runs, and does not
// checkpoint.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		engines: infotheory.NewEnginePool(),
		subs:    make(map[int]func(ProgressEvent)),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.budget == nil {
		s.budget = workpool.NewTokens(0)
	}
	if s.ckptDir != "" {
		// A process killed mid-checkpoint-write leaves .tmp-run-* files
		// behind (the rename never happened). They can never be mistaken
		// for checkpoints, so sweeping them is pure hygiene — best
		// effort: a scan failure here surfaces properly at sweep time,
		// when the store opens the directory for real. Distributed
		// workers run the same sweep on their own startup.
		_, _ = sweep.RemoveStaleTemps(s.ckptDir)
	}
	if s.store == nil && s.ckptDir != "" {
		s.store = sweep.DirStore{Dir: s.ckptDir}
	}
	if s.store != nil && s.cacheBytes > 0 {
		s.store = sweep.NewCacheStore(s.store, s.cacheBytes)
	}
	return s
}

// Budget returns the session's shared worker budget, for composing
// session work with externally managed pipelines.
func (s *Session) Budget() *WorkerBudget { return s.budget }

// Subscribe registers a progress listener and returns its cancel
// function. Listeners may be invoked concurrently from worker goroutines
// and must be cheap and non-blocking; events carry positions, not
// payloads.
func (s *Session) Subscribe(fn func(ProgressEvent)) (cancel func()) {
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = fn
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// dispatch fans one event out to the current subscribers.
func (s *Session) dispatch(ev ProgressEvent) {
	s.mu.Lock()
	fns := make([]func(ProgressEvent), 0, len(s.subs))
	for _, fn := range s.subs {
		fns = append(fns, fn)
	}
	s.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// pipeline materialises a single-run spec bound to the session's budget,
// engine pool and progress listeners.
func (s *Session) pipeline(sp Spec) (experiment.Pipeline, error) {
	p, err := sp.Pipeline()
	if err != nil {
		return p, err
	}
	p.Tokens = s.budget
	p.Engines = s.engines
	p.OnProgress = s.dispatch
	return p, nil
}

// Run executes a single-run spec — the full simulate→align→estimate
// pipeline — under the session's budget and returns its result.
// Equivalent to MeasureSelfOrganization of the spec's pipeline, with
// cancellation, budget sharing and progress events added; the numbers are
// bit-identical.
func (s *Session) Run(ctx context.Context, sp Spec) (*Result, error) {
	p, err := s.pipeline(sp)
	if err != nil {
		return nil, err
	}
	return p.RunCtx(ctx)
}

// Sweep executes a batch of single-run specs concurrently under the
// session's budget and returns the results in spec order. Every spec
// needs a unique non-empty Name — it keys progress events and checkpoint
// files. With a checkpoint directory configured, completed runs persist
// and a re-issued Sweep resumes from them; results then carry only the
// persisted curve-level fields. Cancelling the context stops the sweep
// within one token-grant and returns the context's error (errors.Is
// context.Canceled); finished runs keep their checkpoints.
func (s *Session) Sweep(ctx context.Context, specs ...Spec) ([]*Result, error) {
	runs := make([]experiment.SweepSpec, len(specs))
	for i, sp := range specs {
		if sp.Name == "" {
			return nil, fmt.Errorf("sops: sweep spec %d needs a Name (it keys checkpoints and progress)", i)
		}
		p, err := s.pipeline(sp)
		if err != nil {
			return nil, fmt.Errorf("sops: sweep spec %q: %w", sp.Name, err)
		}
		runs[i] = experiment.SweepSpec{ID: sp.Name, Pipeline: p}
	}
	return s.sweeper().Sweep(ctx, runs)
}

// Figure executes any spec — a named scenario, a custom sweep grid, or a
// single run — and reduces it to its figure. This is the method behind
// `sopsweep`/`sopfigures -spec`.
func (s *Session) Figure(ctx context.Context, sp Spec) (*FigureData, error) {
	return sweep.RunSpec(ctx, s.sweeper(), sp)
}

// Ensemble runs only the simulation stage of a single-run spec and
// returns the fully retained ensemble (for trajectory-level analyses:
// transfer entropy, symbolic complexity, snapshots).
func (s *Session) Ensemble(ctx context.Context, sp Spec) (*Ensemble, error) {
	p, err := s.pipeline(sp)
	if err != nil {
		return nil, err
	}
	ec := p.Ensemble
	// RunCtx would thread the budget in; this path bypasses it, so the
	// session's contract — all concurrent calls share one budget — must
	// be wired explicitly.
	ec.Tokens = s.budget
	col, err := NewEnsembleCollector(ec)
	if err != nil {
		return nil, err
	}
	_, err = sim.StreamEnsembleCtx(ctx, ec, func(f Frame) error {
		if err := col.Visit(f); err != nil {
			return err
		}
		if f.Final {
			s.dispatch(ProgressEvent{Kind: ProgressSampleSimulated, Run: sp.Name, Index: f.Sample})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return col.Ensemble(), nil
}

// System builds a single validated simulation from the spec's sim block,
// seeded from the spec's master seed — the interactive counterpart of Run
// for exploring configurations step by step (sopsim uses it). The spec
// needs no ensemble block.
func (s *Session) System(sp Spec) (*System, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Kind() != spec.KindRun || sp.Sim == nil {
		return nil, fmt.Errorf("sops: System needs a spec with a sim block")
	}
	cfg, err := sp.Sim.Config()
	if err != nil {
		return nil, err
	}
	return sim.New(cfg, rngx.Split(sp.Seed, 1))
}

// runner materialises the session's local sweep executor.
func (s *Session) runner() *SweepRunner {
	return &sweep.Runner{
		Concurrency: s.concurrency,
		Tokens:      s.budget,
		Store:       s.store,
		Engines:     s.engines,
		OnProgress:  s.dispatch,
	}
}

// sweeper selects the session's sweep executor: a distributed
// coordinator when worker processes are configured, the in-process
// runner otherwise. Either way the results are bit-identical — that is
// the distribution contract — so drivers never know which they got.
func (s *Session) sweeper() Sweeper {
	if s.distProcs > 1 && s.distSpawn != nil {
		return &remote.Coordinator{
			Procs:      s.distProcs,
			Budget:     s.budget.Cap(),
			Spawn:      s.distSpawn,
			Store:      s.store,
			OnProgress: s.dispatch,
		}
	}
	return s.runner()
}
