// Command sopslint is the multichecker for this repository's eleven
// contract analyzers (mapiter, rngsource, walltime, ctxflow, tokenpair,
// goroleak, chansend, dettaint, speccoverage, errverbatim, allocfree —
// see internal/lint and DESIGN.md "Mechanized contracts").
//
// It runs two ways:
//
//	sopslint ./...                  # standalone over package patterns
//	sopslint -json ./...            # standalone, diagnostics as JSON
//	go vet -vettool=$(pwd)/sopslint ./...   # as a vet tool in CI
//
// The vettool mode speaks cmd/go's unitchecker protocol: -V=full prints
// a content-addressed version for the build cache, -flags describes the
// (empty) flag set, and a trailing *.cfg argument names the JSON
// compilation-unit config `go vet` hands the tool per package. Facts
// flow between units as .vetx files: each unit decodes the fact sets of
// its dependencies (a truncated or corrupt file is a hard error, not a
// silent skip), publishes its own exports, and writes the merged set to
// the unit's VetxOutput, so cross-package analysis under `go vet`
// matches the in-process meta-test exactly.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
		if a == "-flags" || a == "--flags" {
			// No tool-level flags under vet: the suite's scoping is
			// policy, not configuration (DefaultChecks), and suppression
			// is per-line. -json is standalone-only.
			fmt.Println("[]")
			return
		}
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1]))
	}
	asJSON := false
	var patterns []string
	for _, a := range args {
		if a == "-json" || a == "--json" {
			asJSON = true
			continue
		}
		patterns = append(patterns, a)
	}
	os.Exit(standalone(patterns, asJSON))
}

// printVersion emits the `name version devel ... buildID=hash` line
// cmd/go's build cache keys vet results on: the hash of this executable
// stands in for the analyzer suite's identity.
func printVersion() {
	prog, _ := os.Executable()
	data, err := os.ReadFile(prog)
	if err != nil {
		fmt.Printf("%s version devel\n", filepath.Base(os.Args[0]))
		return
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", filepath.Base(os.Args[0]), sum[:16])
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json:
// stable field names for CI annotation tooling.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone loads the patterns (default ./...) and prints diagnostics —
// human-readable lines on stderr, or with asJSON a JSON array on stdout
// (always an array, [] when clean, so consumers need no special cases).
func standalone(patterns []string, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sopslint:", err)
		return 1
	}
	diags, err := lint.Run(pkgs, lint.DefaultChecks())
	if err != nil {
		fmt.Fprintln(os.Stderr, "sopslint:", err)
		return 1
	}
	if asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "sopslint:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// unitcheck analyzes one compilation unit described by a vet.cfg file.
//
// Units outside this module (the standard library, vendored deps) are
// not typechecked at all — they get a header-only facts file so
// dependents can still open their .vetx. Module units are always
// parsed and typechecked, even when vet asks for facts only
// (VetxOnly), because their exports feed every dependent unit.
func unitcheck(cfgPath string) int {
	res, err := load.Unit(cfgPath, analyzable)
	if err != nil {
		if errors.Is(err, load.ErrTypecheckTolerated) {
			return 0
		}
		fmt.Fprintln(os.Stderr, "sopslint:", err)
		return 1
	}
	if res.Pkg == nil {
		return 0 // out-of-scope unit: header-only vetx already written
	}
	exit := 0
	var diags []analysis.Diagnostic
	if res.VetxOnly {
		lint.ExportFacts(res.Pkg)
	} else {
		diags, err = lint.Run([]*analysis.Package{res.Pkg}, lint.DefaultChecks())
		if err != nil {
			fmt.Fprintln(os.Stderr, "sopslint:", err)
			return 1
		}
	}
	// Write the facts before reporting: vet caches and reuses the
	// .vetx for dependent units whether or not this one had findings.
	if res.VetxOutput != "" {
		if err := load.WriteVetx(res.VetxOutput, res.Pkg.Facts); err != nil {
			fmt.Fprintln(os.Stderr, "sopslint:", err)
			return 1
		}
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		exit = 2
	}
	return exit
}

// analyzable reports whether the import path (possibly carrying vet's
// test-variant suffix) belongs to this module — the scope whose source
// sopslint parses and whose facts it computes.
func analyzable(importPath string) bool {
	p := importPath
	if i := strings.IndexByte(p, ' '); i >= 0 {
		p = p[:i]
	}
	return p == "repro" || strings.HasPrefix(p, "repro/")
}
