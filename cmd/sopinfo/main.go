// Command sopinfo estimates multi-information from a CSV dataset, making
// the repository's estimators usable on external data (any discrete-time
// system with vector observer variables, per Sec. 7 of the paper).
//
// Input format: one sample per row; columns are grouped into variables with
// -dims, e.g. -dims 2,2,2 reads three 2-dimensional variables from six
// columns. A header row is skipped automatically if non-numeric.
//
// Usage:
//
//	sopinfo [-est ksg2|ksg1|ksg-paper|kernel|binned] [-k 4] [-bins 8]
//	        [-tier exact|approx] [-subsample r] [-seed 1]
//	        [-dims 1,1,...] [-workers 1] file.csv
//
// With -groups the per-group decomposition (Eq. 5) is printed as well,
// e.g. -groups 0,0,1,1 assigns the first two variables to group 0.
//
// -tier approx evaluates the KSG sum at -subsample deterministically
// drawn rows (neighbour counts still over all rows) and prints the
// estimate with its 95% confidence interval; -seed keys the draw.
//
// Estimation runs on the shared tree engine; -workers partitions the
// samples of each estimate across that many goroutines (useful for large
// CSVs — the result is bit-identical for every setting).
//
// The estimation stage is declarative: `-spec file.json` reads the
// estimator block (kind, k, bins, workers) of a sops.Spec — the same spec
// the other commands produce — and `-dump-spec` prints the resolved block
// as a spec file, so an estimator configuration travels between the
// simulation CLIs and external-data analysis unchanged.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sops "repro"
	"repro/internal/experiment"
	"repro/internal/infotheory"
)

func main() {
	var (
		est       = flag.String("est", "ksg2", "estimator: ksg2, ksg1, ksg-paper, kernel, binned")
		k         = flag.Int("k", 4, "k-NN parameter for the KSG estimators")
		bins      = flag.Int("bins", 8, "bins per dimension for the binned estimator")
		tier      = flag.String("tier", "", "estimator tier: exact (default) or approx (subsampled KSG with error bars)")
		subsample = flag.Int("subsample", 0, "approximate tier's evaluation budget r (1 <= r <= samples)")
		seed      = flag.Uint64("seed", 1, "seed of the approximate tier's deterministic subsample draw")
		dims      = flag.String("dims", "", "comma-separated variable dimensions (default: every column is a 1-D variable)")
		groups    = flag.String("groups", "", "comma-separated group label per variable; prints the Eq. (5) decomposition")
		workers   = flag.Int("workers", 1, "sample-parallel goroutines per estimate (results are identical for every setting)")
		specFile  = flag.String("spec", "", "read the estimator block (kind/k/bins/workers) from a spec JSON file")
		dumpSpec  = flag.Bool("dump-spec", false, "print the resolved estimator spec JSON and exit")
	)
	flag.Parse()

	esp := &sops.SpecEstimator{Kind: *est, K: *k, Bins: *bins, Tier: *tier, Subsample: *subsample, SampleWorkers: *workers}
	if *specFile != "" {
		sp, err := sops.LoadSpec(*specFile)
		if err != nil {
			fatal(err)
		}
		if sp.Estimator == nil {
			fatal(fmt.Errorf("spec %s has no estimator block", *specFile))
		}
		// Same resolution policy as the sibling CLIs: the file is
		// authoritative, the flags fill what it leaves open — never
		// silently ignored.
		esp = sp.Estimator
		if esp.Kind == "" {
			esp.Kind = *est
		}
		if esp.K == 0 {
			esp.K = *k
		}
		if esp.Bins == 0 {
			esp.Bins = *bins
		}
		if esp.Tier == "" {
			esp.Tier = *tier
		}
		if esp.Subsample == 0 {
			esp.Subsample = *subsample
		}
		if esp.SampleWorkers == 0 {
			esp.SampleWorkers = *workers
		}
	}
	if *dumpSpec {
		sp := sops.Spec{Version: sops.SpecVersion, Name: "sopinfo", Estimator: esp}
		if err := sp.Validate(); err != nil {
			fatal(err)
		}
		b, err := sp.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sopinfo [flags] file.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	rows, err := readNumericCSV(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(rows) == 0 {
		fatal(fmt.Errorf("no data rows in %s", flag.Arg(0)))
	}
	ds, err := buildDataset(rows, *dims)
	if err != nil {
		fatal(err)
	}
	kind := experiment.EstimatorKind(esp.Kind)
	if err := validateKSGK(kind, esp.K, ds.NumSamples()); err != nil {
		fatal(err)
	}

	// One engine serves the whole run (the headline estimate, and every
	// term of the decomposition below): its k-d trees and scratch stores
	// are recycled call to call. An unknown kind surfaces as the typed
	// experiment.UnknownEstimatorError, which lists the valid kinds.
	engine := infotheory.NewEngine(esp.SampleWorkers)
	estimator, err := experiment.NewEstimator(kind, esp.K, esp.Bins, engine)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("samples: %d, variables: %d (total dimension %d)\n",
		ds.NumSamples(), ds.NumVars(), ds.TotalDim())
	switch sops.EstimatorTier(esp.Tier) {
	case "", sops.TierExact:
		if esp.Subsample != 0 {
			fatal(fmt.Errorf("-subsample needs -tier approx"))
		}
		fmt.Printf("multi-information (%s): %.4f bits\n", esp.Kind, estimator(ds))
	case sops.TierApprox:
		variant, ok := kind.KSGVariant()
		if !ok {
			fatal(fmt.Errorf("-tier approx requires a KSG estimator, have %q", esp.Kind))
		}
		if esp.Subsample < 1 || esp.Subsample > ds.NumSamples() {
			fatal(fmt.Errorf("-subsample %d needs 1 <= r <= samples (%d)", esp.Subsample, ds.NumSamples()))
		}
		opts := sops.ApproxOptions{Subsample: esp.Subsample, Seed: *seed}
		ae := engine.MultiInfoKSGApprox(ds, esp.K, variant, opts)
		fmt.Printf("multi-information (%s, approx r=%d): %.4f ± %.4f bits (95%% CI [%.4f, %.4f])\n",
			esp.Kind, ae.Evals, ae.MI, 1.96*ae.StdErr, ae.CILow, ae.CIHigh)
		// The decomposition below reuses the same draw, so the group
		// terms' subsampling noise cancels in the Eq. (5) subtraction.
		estimator = func(d *infotheory.Dataset) float64 {
			return engine.MultiInfoKSGApprox(d, esp.K, variant, opts).MI
		}
	default:
		fatal(fmt.Errorf("unknown -tier %q (want exact or approx)", esp.Tier))
	}

	if *groups != "" {
		labels, err := parseInts(*groups)
		if err != nil {
			fatal(err)
		}
		if len(labels) != ds.NumVars() {
			fatal(fmt.Errorf("%d group labels for %d variables", len(labels), ds.NumVars()))
		}
		gs := infotheory.GroupsByLabel(labels)
		dec := infotheory.Decompose(ds, gs, estimator)
		fmt.Printf("decomposition: between-groups %.4f bits\n", dec.Between)
		for g, w := range dec.Within {
			fmt.Printf("  within group %d (vars %v): %.4f bits\n", g, gs[g], w)
		}
		fmt.Printf("  reconstructed total: %.4f bits\n", dec.Total())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sopinfo:", err)
	os.Exit(1)
}

// validateKSGK checks the k-NN parameter against the CSV's sample count
// before any estimate runs, turning what used to be a panic deep in the
// estimator (infotheory: "KSG needs 1 <= k < m") into a clean CLI error.
// One check covers the headline estimate and every decomposition term:
// the Eq. (5) decomposition selects variable subsets, never sample
// subsets, so each group estimate sees the same m rows.
func validateKSGK(est experiment.EstimatorKind, k, samples int) error {
	if est.UsesKNN() {
		if k < 1 || k >= samples {
			return fmt.Errorf("-k %d needs 1 <= k < samples, but the CSV has %d data rows; "+
				"pass a smaller -k or provide at least k+1 samples", k, samples)
		}
	}
	return nil
}

func readNumericCSV(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, err
	}
	var rows [][]float64
	for ri, rec := range records {
		row := make([]float64, len(rec))
		ok := true
		for ci, cell := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				ok = false
				break
			}
			row[ci] = v
		}
		if !ok {
			if ri == 0 {
				continue // header
			}
			return nil, fmt.Errorf("non-numeric cell in row %d", ri+1)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func buildDataset(rows [][]float64, dimsSpec string) (*infotheory.Dataset, error) {
	nCols := len(rows[0])
	for ri, row := range rows {
		if len(row) != nCols {
			return nil, fmt.Errorf("row %d has %d columns, want %d", ri+1, len(row), nCols)
		}
	}
	var dims []int
	if dimsSpec == "" {
		dims = make([]int, nCols)
		for i := range dims {
			dims[i] = 1
		}
	} else {
		var err error
		dims, err = parseInts(dimsSpec)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, d := range dims {
			total += d
		}
		if total != nCols {
			return nil, fmt.Errorf("dims sum to %d but the CSV has %d columns", total, nCols)
		}
	}
	ds := infotheory.NewDataset(len(rows), dims)
	for s, row := range rows {
		col := 0
		for v, d := range dims {
			ds.SetVar(s, v, row[col:col+d]...)
			col += d
		}
	}
	return ds, nil
}

func parseInts(spec string) ([]int, error) {
	parts := strings.Split(spec, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out[i] = v
	}
	return out, nil
}
