package main

import (
	"repro/internal/experiment"

	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadNumericCSVSkipsHeader(t *testing.T) {
	path := writeTemp(t, "x,y\n1,2\n3,4\n")
	rows, err := readNumericCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != 1 || rows[1][1] != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestReadNumericCSVNoHeader(t *testing.T) {
	path := writeTemp(t, "1,2\n3,4\n")
	rows, err := readNumericCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestReadNumericCSVRejectsMidFileGarbage(t *testing.T) {
	path := writeTemp(t, "1,2\nfoo,4\n")
	if _, err := readNumericCSV(path); err == nil {
		t.Fatal("garbage row accepted")
	}
}

func TestReadNumericCSVMissingFile(t *testing.T) {
	if _, err := readNumericCSV(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBuildDatasetDefaultDims(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	ds, err := buildDataset(rows, "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumVars() != 3 || ds.NumSamples() != 2 || ds.Dim(0) != 1 {
		t.Fatalf("dataset shape wrong: vars=%d samples=%d", ds.NumVars(), ds.NumSamples())
	}
	if ds.Var(1, 2)[0] != 6 {
		t.Fatal("values misplaced")
	}
}

func TestBuildDatasetExplicitDims(t *testing.T) {
	rows := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	ds, err := buildDataset(rows, "2,2")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumVars() != 2 || ds.Dim(0) != 2 {
		t.Fatal("dims not applied")
	}
	v := ds.Var(0, 1)
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("Var(0,1) = %v", v)
	}
}

func TestBuildDatasetDimsMismatch(t *testing.T) {
	rows := [][]float64{{1, 2, 3}}
	if _, err := buildDataset(rows, "2,2"); err == nil {
		t.Fatal("dims/columns mismatch accepted")
	}
}

func TestBuildDatasetRaggedRows(t *testing.T) {
	rows := [][]float64{{1, 2}, {3}}
	if _, err := buildDataset(rows, ""); err == nil {
		t.Fatal("ragged rows accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad integer accepted")
	}
}

// TestValidateKSGKTinyCSV is the regression test for the -k panic: a CSV
// with fewer data rows than k used to crash inside the estimator
// ("infotheory: KSG needs 1 <= k < m", ksg.go); it must be a clean error
// covering the headline estimate and the decomposition (same m rows).
func TestValidateKSGKTinyCSV(t *testing.T) {
	path := writeTemp(t, "x,y\n1,2\n3,4\n5,6\n")
	rows, err := readNumericCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := buildDataset(rows, "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 3 {
		t.Fatalf("samples = %d", ds.NumSamples())
	}
	for _, est := range []experiment.EstimatorKind{experiment.EstKSG2, experiment.EstKSG1, experiment.EstKSGPaper} {
		if err := validateKSGK(est, 4, ds.NumSamples()); err == nil {
			t.Fatalf("%s: default k=4 on 3 samples accepted", est)
		}
		if err := validateKSGK(est, 3, ds.NumSamples()); err == nil {
			t.Fatalf("%s: k == samples accepted", est)
		}
		if err := validateKSGK(est, 0, ds.NumSamples()); err == nil {
			t.Fatalf("%s: k=0 accepted", est)
		}
		if err := validateKSGK(est, 2, ds.NumSamples()); err != nil {
			t.Fatalf("%s: valid k rejected: %v", est, err)
		}
	}
	// The non-kNN estimators ignore k entirely.
	for _, est := range []experiment.EstimatorKind{experiment.EstKernel, experiment.EstBinned} {
		if err := validateKSGK(est, 99, ds.NumSamples()); err != nil {
			t.Fatalf("%s: k should be ignored: %v", est, err)
		}
	}
}

func TestEndToEndEstimateOnGeneratedData(t *testing.T) {
	// Strongly dependent pair through the full CSV path.
	content := "x,y\n"
	for i := 0; i < 300; i++ {
		x := math.Sin(float64(i) * 12.9898)
		x = x - math.Floor(x) // crude deterministic pseudo-noise in [0,1)
		content += formatRow(x, x*2+0.001*float64(i%7))
	}
	path := writeTemp(t, content)
	rows, err := readNumericCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := buildDataset(rows, "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 300 || ds.NumVars() != 2 {
		t.Fatal("dataset shape wrong")
	}
}

func formatRow(x, y float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) + "," + strconv.FormatFloat(y, 'g', -1, 64) + "\n"
}
