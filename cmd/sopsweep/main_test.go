package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig8", "fig9", "fig10", "rings", "cell-adhesion", "long-range"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list missing %q:\n%s", name, out.String())
		}
	}
}

func TestFlagValidation(t *testing.T) {
	if err := run(context.Background(), nil, io.Discard, io.Discard); err == nil {
		t.Fatal("no target accepted")
	}
	if err := run(context.Background(), []string{"-scenario", "fig8", "-spec", "x.json"}, io.Discard, io.Discard); err == nil {
		t.Fatal("both -scenario and -spec accepted")
	}
	if err := run(context.Background(), []string{"-scenario", "nope"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run(context.Background(), []string{"-scenario", "fig8", "-scale", "huge"}, io.Discard, io.Discard); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

// TestScenarioEndToEndWithResume runs the fig8 scenario at test scale
// with checkpointing, then re-runs into a second output directory: the
// resumed run must do zero pipeline work (every run restored) and its
// CSV must be byte-identical — the CLI-level resume contract.
func TestScenarioEndToEndWithResume(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-heavy")
	}
	base := t.TempDir()
	ckpt := filepath.Join(base, "ckpt")
	out1 := filepath.Join(base, "out1")
	out2 := filepath.Join(base, "out2")
	args := []string{"-scenario", "fig8", "-scale", "test", "-seed", "7",
		"-checkpoint", ckpt, "-runs", "2"}
	if err := run(context.Background(), append(args, "-out", out1), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	var progress bytes.Buffer
	if err := run(context.Background(), append(args, "-out", out2), io.Discard, &progress); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "from checkpoint") {
		t.Fatalf("second run did not resume:\n%s", progress.String())
	}
	if strings.Contains(strings.ReplaceAll(progress.String(), "(from checkpoint)", ""), "done fig8") &&
		strings.Count(progress.String(), "from checkpoint") != strings.Count(progress.String(), "done ") {
		t.Fatalf("second run recomputed runs:\n%s", progress.String())
	}
	a, err := os.ReadFile(filepath.Join(out1, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(out2, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed CSV differs from the original run")
	}
}

func TestCustomGridSpecEndToEnd(t *testing.T) {
	base := t.TempDir()
	spec := filepath.Join(base, "grid.json")
	if err := os.WriteFile(spec, []byte(`{
		"name": "minigrid",
		"n": 8,
		"typeCounts": [2],
		"cutoffs": [-1],
		"force": {"family": "f2"},
		"m": 8, "steps": 6, "recordEvery": 3, "repeats": 2
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(base, "out")
	var stdout bytes.Buffer
	if err := run(context.Background(), []string{"-spec", spec, "-out", out, "-q"}, &stdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "minigrid.csv")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "minigrid") {
		t.Fatalf("chart output missing:\n%s", stdout.String())
	}
}

// TestDumpSpecRoundTrip: -dump-spec output fed back through -spec
// reproduces byte-identical figure output — the CLI-level face of the
// spec round-trip contract.
func TestDumpSpecRoundTrip(t *testing.T) {
	base := t.TempDir()
	var dumped bytes.Buffer
	args := []string{"-scenario", "fig8", "-scale", "test", "-seed", "5", "-m", "24", "-repeats", "2"}
	if err := run(context.Background(), append(args, "-dump-spec"), &dumped, io.Discard); err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(base, "fig8.json")
	if err := os.WriteFile(specPath, dumped.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	outA := filepath.Join(base, "a")
	outB := filepath.Join(base, "b")
	if err := run(context.Background(), append(args, "-out", outA, "-q"), io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-spec", specPath, "-out", outB, "-q"}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(outA, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(outB, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("-spec run diverged from the -scenario run it was dumped from")
	}
}

// TestLegacyGridSpecStillAccepted: pre-Spec grid JSON (no version key)
// is auto-detected and converted.
func TestLegacyGridSpecStillAccepted(t *testing.T) {
	base := t.TempDir()
	legacy := `{"name":"lg","n":8,"typeCounts":[2],"cutoffs":[5],"force":{"family":"f1"},"repeats":2}`
	path := filepath.Join(base, "legacy.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(base, "out")
	if err := run(context.Background(), []string{"-spec", path, "-scale", "test", "-out", out, "-q"}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "lg.csv")); err != nil {
		t.Fatal("legacy grid produced no figure:", err)
	}
}
