// Command sopsweep runs batched sweep experiments — many full
// simulate→align→estimate pipelines — concurrently under one global
// worker budget, with optional per-run checkpointing so an interrupted
// sweep resumes from what is already on disk.
//
// Every invocation resolves to one declarative sops.Spec and executes it
// through a sops.Session: `-scenario` names a registered spec, `-spec`
// loads one from JSON (the versioned Spec format; legacy grid files are
// still accepted), and `-dump-spec` prints the fully resolved spec
// instead of running it, so any invocation can be captured, versioned and
// replayed exactly.
//
// Usage:
//
//	sopsweep [flags] -scenario <name>     # named scenario from the registry
//	sopsweep [flags] -spec file.json      # spec file (scenario, grid, or single run)
//	sopsweep -list                        # list registered scenarios
//
// Flags:
//
//	-scale quick|paper|test   ensemble scale preset (default quick)
//	-seed N                   master seed; every run derives its own
//	                          rngx.Split sub-streams from it
//	-m/-steps/-repeats N      override single fields of the scale
//	-runs N                   concurrent pipeline runs (0 = GOMAXPROCS,
//	                          1 = serial run order)
//	-budget N                 global worker tokens shared by all stages
//	                          of all in-flight runs (0 = GOMAXPROCS)
//	-checkpoint DIR           write one file per completed run and
//	                          resume from matching files already present
//	-cache-bytes N            front the checkpoint store with an
//	                          in-memory LRU of N bytes (0 disables)
//	-worker-procs N           shard the sweep across N worker processes
//	                          (re-exec'd sopsweep children; 0/1 = in-process);
//	                          the worker budget is split among them
//	-out DIR                  output directory (CSV + SVG per figure)
//	-dump-spec                print the resolved spec JSON and exit
//
// With -worker-procs, this process coordinates: children are spawned in
// a hidden worker mode (`sopsweep -worker -dist-addr <socket>`), receive
// one spec at a time over length-prefixed frames, run it against the
// shared -checkpoint store, and stream progress back. A killed worker
// only requeues its run to the survivors; output stays byte-identical
// to the in-process sweep.
//
// SIGINT cancels the sweep gracefully: in-flight runs stop within one
// worker-token grant, completed runs keep their checkpoints, and
// re-running the identical command with the same -checkpoint resumes and
// produces byte-identical output. Results are bit-identical for every
// -runs/-budget setting; see DESIGN.md "Public API".
//
// Spec and grid files may select the approximate estimator tier
// (estimator block: "tier": "approx", "subsample": r): each run's KSG
// sum is then evaluated at r deterministically drawn samples per step
// with per-step error bars, ~M/r faster at large M. Approximate-tier
// runs key their own checkpoints — they never collide with exact-tier
// checkpoints of the same grid — and resume byte-identically, because
// the subsample draw depends only on (seed, step), never on scheduling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"

	sops "repro"
	"repro/internal/plot"
	"repro/internal/sweep"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sopsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sopsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario  = fs.String("scenario", "", "named scenario to run (see -list)")
		specFile  = fs.String("spec", "", "spec JSON file (scenario, grid, or single run)")
		list      = fs.Bool("list", false, "list registered scenarios and exit")
		dumpSpec  = fs.Bool("dump-spec", false, "print the resolved spec JSON and exit without running")
		scaleName = fs.String("scale", "quick", "ensemble scale: quick, paper, or test")
		seed      = fs.Uint64("seed", 2012, "master seed")
		mOverride = fs.Int("m", 0, "override the ensemble size M of the chosen scale")
		stepsOv   = fs.Int("steps", 0, "override t_max of the chosen scale")
		repeatsOv = fs.Int("repeats", 0, "override the repeat draws of the chosen scale")
		runs      = fs.Int("runs", 0, "concurrent pipeline runs (0 = GOMAXPROCS, 1 = serial)")
		budget    = fs.Int("budget", 0, "global worker budget shared by all in-flight runs (0 = GOMAXPROCS)")
		ckptDir   = fs.String("checkpoint", "", "checkpoint directory; completed runs resume from it")
		cacheB    = fs.Int("cache-bytes", 0, "in-memory result cache in bytes fronting the checkpoint store (0 = off)")
		procs     = fs.Int("worker-procs", 0, "shard the sweep across N worker processes (0/1 = in-process)")
		outDir    = fs.String("out", "out", "output directory")
		quiet     = fs.Bool("q", false, "suppress per-run progress lines")
		// Hidden plumbing for -worker-procs: the coordinator re-execs
		// this binary as `sopsweep -worker -dist-addr <socket>`.
		workerMode = fs.Bool("worker", false, "run as a distributed sweep worker (internal)")
		distAddr   = fs.String("dist-addr", "", "coordinator socket address for -worker (internal)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		if *distAddr == "" {
			return fmt.Errorf("-worker requires -dist-addr")
		}
		return sops.ServeSweepWorker(ctx, *distAddr, sops.SweepWorkerOptions{
			Budget:     *budget,
			Dir:        *ckptDir,
			CacheBytes: *cacheB,
		})
	}
	if *list {
		for _, s := range sweep.Scenarios() {
			fmt.Fprintf(stdout, "%-14s %s\n", s.Name, s.Desc)
		}
		return nil
	}
	if (*scenario == "") == (*specFile == "") {
		return fmt.Errorf("exactly one of -scenario or -spec is required (or -list)")
	}

	sp, err := resolveSpec(*scenario, *specFile, *scaleName, *seed)
	if err != nil {
		return err
	}
	// The spec (file or scenario) is authoritative; flags fill only what
	// it leaves open — one shared policy for every CLI.
	sp.MergeCLIOverrides(*scaleName, *seed, *mOverride, *stepsOv, *repeatsOv)
	if err := sp.Validate(); err != nil {
		return err
	}
	if *dumpSpec {
		b, err := sp.MarshalIndent()
		if err != nil {
			return err
		}
		_, err = stdout.Write(b)
		return err
	}

	opts := []sops.SessionOption{
		sops.WithWorkerBudget(*budget),
		sops.WithRunConcurrency(*runs),
		sops.WithCheckpointDir(*ckptDir),
		sops.WithResultCache(*cacheB),
	}
	if *procs > 1 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("resolving worker executable: %w", err)
		}
		spawn := sops.CommandSpawner(exe, stderr, func(_ int, addr string, budget int) []string {
			return sops.SweepWorkerArgs(addr, budget, *ckptDir)
		})
		opts = append(opts, sops.WithWorkerProcs(*procs, spawn))
	}
	session := sops.NewSession(opts...)
	if !*quiet {
		defer session.Subscribe(func(ev sops.ProgressEvent) {
			if ev.Kind != sops.ProgressRunDone {
				return
			}
			suffix := ""
			if ev.FromCheckpoint {
				suffix = " (from checkpoint)"
			}
			fmt.Fprintf(stderr, "done %s%s\n", ev.Run, suffix)
		})()
	}

	fd, err := session.Figure(ctx, sp)
	if err != nil {
		return interruptMsg(err, *ckptDir)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	return saveFigure(stdout, *outDir, fd)
}

// interruptMsg decorates a cancellation with what actually happened to
// the work: resumable only if a checkpoint directory was in use.
func interruptMsg(err error, ckptDir string) error {
	if !errors.Is(err, context.Canceled) {
		return err
	}
	if ckptDir != "" {
		return fmt.Errorf("interrupted — completed runs are checkpointed; rerun with the same -checkpoint to resume: %w", err)
	}
	return fmt.Errorf("interrupted — no -checkpoint was set, so nothing was persisted: %w", err)
}

// resolveSpec turns the invocation into one declarative spec: a named
// scenario, a versioned Spec file, or a legacy grid file (auto-detected
// and converted).
func resolveSpec(scenario, specFile, scale string, seed uint64) (sops.Spec, error) {
	if scenario != "" {
		s, ok := sweep.LookupScenario(scenario)
		if !ok {
			return sops.Spec{}, fmt.Errorf("unknown scenario %q (use -list)", scenario)
		}
		return s.Spec(scale, seed), nil
	}
	sp, err := sops.LoadSpec(specFile)
	if err == nil {
		return sp, nil // scale/seed defaults merge in MergeCLIOverrides
	}
	// Legacy pre-Spec grid files have no "version" key; fall back to the
	// old parser and convert.
	g, gerr := sweep.LoadGridSpec(specFile)
	if gerr != nil {
		return sops.Spec{}, err // report the Spec-format error, it is canonical
	}
	return g.Spec(scale, seed), nil
}

// saveFigure renders the figure as an ASCII chart on stdout and writes
// the CSV + SVG files, mirroring sopfigures' output conventions.
func saveFigure(stdout io.Writer, outDir string, fd *sops.FigureData) error {
	names := make([]string, len(fd.Series))
	xs := make([][]float64, len(fd.Series))
	ys := make([][]float64, len(fd.Series))
	chart := &plot.Chart{Title: fd.Title, XLabel: "t", YLabel: "bits"}
	for i, s := range fd.Series {
		names[i] = s.Name
		xs[i] = s.X
		ys[i] = s.Y
		chart.Add(s.Name, s.X, s.Y)
	}
	fmt.Fprint(stdout, chart.Render(72, 18))
	if fd.Notes != "" {
		fmt.Fprintln(stdout, "notes:", fd.Notes)
	}
	csvPath := filepath.Join(outDir, fd.ID+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := plot.WriteSeriesCSV(f, names, xs, ys); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	svgPath := filepath.Join(outDir, fd.ID+".svg")
	if err := os.WriteFile(svgPath, []byte(plot.SVGLines(fd.Title, names, xs, ys, 560)), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s and %s\n", csvPath, svgPath)
	return nil
}
