// Command sopsweep runs batched sweep experiments — many full
// simulate→align→estimate pipelines — concurrently under one global
// worker budget, with optional per-run checkpointing so an interrupted
// sweep resumes from what is already on disk.
//
// Usage:
//
//	sopsweep [flags] -scenario <name>     # named scenario from the registry
//	sopsweep [flags] -spec grid.json      # custom grid from a JSON spec
//	sopsweep -list                        # list registered scenarios
//
// Flags:
//
//	-scale quick|paper|test   ensemble scale preset (default quick)
//	-seed N                   master seed; every run derives its own
//	                          rngx.Split sub-streams from it
//	-m/-steps/-repeats N      override single fields of the scale
//	-runs N                   concurrent pipeline runs (0 = GOMAXPROCS,
//	                          1 = serial run order)
//	-budget N                 global worker tokens shared by all stages
//	                          of all in-flight runs (0 = GOMAXPROCS)
//	-checkpoint DIR           write one gob file per completed run and
//	                          resume from matching files already present
//	-out DIR                  output directory (CSV + SVG per figure)
//
// Results are bit-identical for every -runs/-budget setting and for a
// resumed versus uninterrupted sweep; see DESIGN.md "Sweep
// orchestration".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/plot"
	"repro/internal/sweep"
	"repro/internal/workpool"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sopsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sopsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario  = fs.String("scenario", "", "named scenario to run (see -list)")
		specFile  = fs.String("spec", "", "JSON grid spec file for a custom sweep")
		list      = fs.Bool("list", false, "list registered scenarios and exit")
		scaleName = fs.String("scale", "quick", "ensemble scale: quick, paper, or test")
		seed      = fs.Uint64("seed", 2012, "master seed")
		mOverride = fs.Int("m", 0, "override the ensemble size M of the chosen scale")
		stepsOv   = fs.Int("steps", 0, "override t_max of the chosen scale")
		repeatsOv = fs.Int("repeats", 0, "override the repeat draws of the chosen scale")
		runs      = fs.Int("runs", 0, "concurrent pipeline runs (0 = GOMAXPROCS, 1 = serial)")
		budget    = fs.Int("budget", 0, "global worker budget shared by all in-flight runs (0 = GOMAXPROCS)")
		ckptDir   = fs.String("checkpoint", "", "checkpoint directory; completed runs resume from it")
		outDir    = fs.String("out", "out", "output directory")
		quiet     = fs.Bool("q", false, "suppress per-run progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, s := range sweep.Scenarios() {
			fmt.Fprintf(stdout, "%-14s %s\n", s.Name, s.Desc)
		}
		return nil
	}
	if (*scenario == "") == (*specFile == "") {
		return fmt.Errorf("exactly one of -scenario or -spec is required (or -list)")
	}
	var sc experiment.Scale
	switch *scaleName {
	case "quick":
		sc = experiment.QuickScale()
	case "paper":
		sc = experiment.PaperScale()
	case "test":
		sc = experiment.TestScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *mOverride > 0 {
		sc.M = *mOverride
	}
	if *stepsOv > 0 {
		sc.Steps = *stepsOv
	}
	if *repeatsOv > 0 {
		sc.Repeats = *repeatsOv
	}

	runner := &sweep.Runner{
		Concurrency: *runs,
		Tokens:      workpool.NewTokens(*budget),
		Dir:         *ckptDir,
	}
	if !*quiet {
		runner.OnRunDone = func(i int, spec experiment.SweepSpec, _ *experiment.Result, fromCheckpoint bool) {
			suffix := ""
			if fromCheckpoint {
				suffix = " (from checkpoint)"
			}
			fmt.Fprintf(stderr, "done %s%s\n", spec.ID, suffix)
		}
	}

	var fd *experiment.FigureData
	var err error
	switch {
	case *scenario != "":
		s, ok := sweep.LookupScenario(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (use -list)", *scenario)
		}
		fd, err = s.Run(runner, sc, *seed)
	default:
		var g *sweep.GridSpec
		if g, err = sweep.LoadGridSpec(*specFile); err != nil {
			return err
		}
		fd, err = g.Figure(runner, sc, *seed)
	}
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	return saveFigure(stdout, *outDir, fd)
}

// saveFigure renders the figure as an ASCII chart on stdout and writes
// the CSV + SVG files, mirroring sopfigures' output conventions.
func saveFigure(stdout io.Writer, outDir string, fd *experiment.FigureData) error {
	names := make([]string, len(fd.Series))
	xs := make([][]float64, len(fd.Series))
	ys := make([][]float64, len(fd.Series))
	chart := &plot.Chart{Title: fd.Title, XLabel: "t", YLabel: "bits"}
	for i, s := range fd.Series {
		names[i] = s.Name
		xs[i] = s.X
		ys[i] = s.Y
		chart.Add(s.Name, s.X, s.Y)
	}
	fmt.Fprint(stdout, chart.Render(72, 18))
	if fd.Notes != "" {
		fmt.Fprintln(stdout, "notes:", fd.Notes)
	}
	csvPath := filepath.Join(outDir, fd.ID+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := plot.WriteSeriesCSV(f, names, xs, ys); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	svgPath := filepath.Join(outDir, fd.ID+".svg")
	if err := os.WriteFile(svgPath, []byte(plot.SVGLines(fd.Title, names, xs, ys, 560)), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s and %s\n", csvPath, svgPath)
	return nil
}
