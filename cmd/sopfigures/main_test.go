package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/vec"
)

func TestResultFigure(t *testing.T) {
	fd := resultFigure("figX", "title", []int{0, 10, 20}, []float64{1, 2, 3})
	if fd.ID != "figX" || len(fd.Series) != 1 {
		t.Fatal("figure structure wrong")
	}
	if fd.Series[0].X[1] != 10 || fd.Series[0].Y[2] != 3 {
		t.Fatal("series values wrong")
	}
}

func TestRunnerSaveFigureWritesCSVAndSVG(t *testing.T) {
	dir := t.TempDir()
	r := runner{sc: experiment.TestScale(), seed: 1, out: dir}
	fd := &experiment.FigureData{
		ID:    "figtest",
		Title: "test figure",
		Series: []experiment.Series{
			{Name: "a", X: []float64{0, 1}, Y: []float64{2, 3}},
		},
	}
	if err := r.saveFigure(fd); err != nil {
		t.Fatal(err)
	}
	csvBytes, err := os.ReadFile(filepath.Join(dir, "figtest.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csvBytes), "series,x,y") {
		t.Error("CSV header missing")
	}
	svgBytes, err := os.ReadFile(filepath.Join(dir, "figtest.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svgBytes), "<svg") {
		t.Error("SVG output malformed")
	}
}

func TestRunnerSaveConfigs(t *testing.T) {
	dir := t.TempDir()
	r := runner{sc: experiment.TestScale(), seed: 1, out: dir}
	cfgs := []experiment.TypedConfig{
		{
			Label: "demo",
			Pos:   []vec.Vec2{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 0}},
			Types: []int{0, 1, 2},
		},
	}
	if err := r.saveConfigs("figz", cfgs); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figz-00.svg")); err != nil {
		t.Fatal("SVG not written")
	}
}

func TestRunnerUnknownFigure(t *testing.T) {
	r := runner{sc: experiment.TestScale(), seed: 1, out: t.TempDir()}
	if err := r.run("fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunnerFig2EndToEnd(t *testing.T) {
	dir := t.TempDir()
	r := runner{sc: experiment.TestScale(), seed: 1, out: dir}
	if err := r.run("fig2"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2.csv")); err != nil {
		t.Fatal("fig2.csv not written")
	}
}
