// Command sopfigures regenerates every figure of the paper's evaluation
// section (Figs. 1–12) plus the Sec. 5.3 estimator comparison.
//
// Usage:
//
//	sopfigures [-scale quick|paper|test] [-seed N] [-out DIR]
//	           [-runs N] [-budget N] [-checkpoint DIR] <figure>
//	sopfigures [flags] -spec file.json        # run any declarative spec
//	sopfigures [flags] -dump-spec <figure>    # print the figure's spec
//
// where <figure> is one of fig1 … fig12, estimators, or all. Each figure is
// written to DIR as CSV (curves) and/or SVG (configurations), and a compact
// ASCII rendition is printed to stdout. The default quick scale preserves
// the paper's curve shapes at laptop cost; -scale paper reproduces the full
// ensemble sizes (m = 500, 10 repeat draws — hours of CPU for the sweeps).
//
// The measurement figures have a declarative sops.Spec form: -dump-spec
// prints it (pipeline figures fig4/fig5/fig11 as explicit single-run
// specs with the drawn matrices pinned; sweep figures fig8/fig9/fig10 as
// scenario specs), and -spec runs any spec file through a Session —
// `sopfigures -dump-spec fig9 > f.json && sopfigures -spec f.json`
// regenerates the same figure data (CSV byte-identical; the SVG of a
// replayed pipeline figure carries a generic title derived from the spec
// name). Snapshot figures (1, 3, 6, 7, 12) and the force-curve plot (2)
// are bespoke drivers without a spec form.
//
// The sweep figures (8–10, estimators) execute through the budgeted
// concurrent runner: -runs bounds the in-flight pipelines, -budget the
// global worker tokens shared by all of their stages, and -checkpoint
// makes the sweep resumable (one file per completed run). SIGINT cancels
// gracefully: completed runs keep their checkpoints and the identical
// command resumes. Outputs are bit-identical for every -runs/-budget
// setting; see also cmd/sopsweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	sops "repro"
	"repro/internal/experiment"
	"repro/internal/plot"
	"repro/internal/spec"
	"repro/internal/sweep"
	"repro/internal/workpool"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", "ensemble scale: quick, paper, or test")
		seed      = flag.Uint64("seed", 2012, "master seed")
		outDir    = flag.String("out", "out", "output directory")
		mOverride = flag.Int("m", 0, "override the ensemble size M of the chosen scale")
		stepsOv   = flag.Int("steps", 0, "override t_max of the chosen scale")
		repeatsOv = flag.Int("repeats", 0, "override the random-type repeat draws of the chosen scale")
		runs      = flag.Int("runs", 0, "concurrent pipeline runs for the sweep figures (0 = GOMAXPROCS, 1 = serial)")
		budget    = flag.Int("budget", 0, "global worker budget shared by all in-flight sweep runs (0 = GOMAXPROCS)")
		ckpt      = flag.String("checkpoint", "", "checkpoint directory for sweep runs; an interrupted sweep resumes from it")
		specFile  = flag.String("spec", "", "run a declarative spec file instead of a named figure")
		dumpSpec  = flag.Bool("dump-spec", false, "print the figure's declarative spec JSON and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sopfigures [flags] <fig1|...|fig12|estimators|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sc, err := scaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *mOverride > 0 {
		sc.M = *mOverride
	}
	if *stepsOv > 0 {
		sc.Steps = *stepsOv
	}
	if *repeatsOv > 0 {
		sc.Repeats = *repeatsOv
	}
	r := runner{sc: sc, seed: *seed, out: *outDir, ctx: ctx, sw: &sweep.Runner{
		Concurrency: *runs,
		Tokens:      workpool.NewTokens(*budget),
		Dir:         *ckpt,
	}}

	if *specFile != "" {
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("-spec replaces the figure argument"))
		}
		sp, err := sops.LoadSpec(*specFile)
		if err != nil {
			fatal(err)
		}
		// Same resolution as sopsweep: the file is authoritative, the
		// flags fill what it leaves open — never silently ignored.
		sp.MergeCLIOverrides(*scaleName, *seed, *mOverride, *stepsOv, *repeatsOv)
		if err := sp.Validate(); err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		session := sops.NewSession(
			sops.WithWorkerBudget(*budget),
			sops.WithRunConcurrency(*runs),
			sops.WithCheckpointDir(*ckpt),
		)
		fd, err := session.Figure(ctx, sp)
		if err != nil {
			fatal(interruptMsg(err, *ckpt))
		}
		if err := r.saveFigure(fd); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	target := strings.ToLower(flag.Arg(0))

	if *dumpSpec {
		sp, err := specFor(target, sc, *scaleName, *seed)
		if err != nil {
			fatal(err)
		}
		b, err := sp.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
		return
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	all := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "estimators"}
	if target == "all" {
		for _, f := range all {
			if err := r.run(f); err != nil {
				fatal(interruptMsg(fmt.Errorf("%s: %w", f, err), *ckpt))
			}
		}
		return
	}
	if err := r.run(target); err != nil {
		fatal(interruptMsg(fmt.Errorf("%s: %w", target, err), *ckpt))
	}
}

// interruptMsg decorates a cancellation with what actually happened to
// the work: resumable only if a checkpoint directory was in use.
func interruptMsg(err error, ckptDir string) error {
	if !errors.Is(err, context.Canceled) {
		return err
	}
	if ckptDir != "" {
		return fmt.Errorf("interrupted — completed sweep runs are checkpointed; rerun with the same -checkpoint to resume: %w", err)
	}
	return fmt.Errorf("interrupted — no -checkpoint was set, so nothing was persisted: %w", err)
}

// scaleByName is the spec layer's preset lookup; the CLI's flag default
// guarantees the name is never empty.
func scaleByName(name string) (experiment.Scale, error) {
	return spec.ScaleByName(name)
}

// specFor returns the declarative spec of a figure: explicit single-run
// specs for the pipeline figures (the drawn matrices are pinned in the
// spec, so the file alone reproduces the figure), scenario specs for the
// sweep figures.
func specFor(fig string, sc experiment.Scale, scaleName string, seed uint64) (sops.Spec, error) {
	switch fig {
	case "fig4":
		return sops.SpecFromPipeline(experiment.Fig4PipelineOf(sc, seed))
	case "fig5":
		return sops.SpecFromPipeline(experiment.Fig5PipelineOf(sc, seed))
	case "fig11":
		return sops.SpecFromPipeline(experiment.Fig11PipelineOf(sc, seed))
	case "fig8", "fig9", "fig10":
		s, ok := sweep.LookupScenario(fig)
		if !ok {
			return sops.Spec{}, fmt.Errorf("scenario %q missing from the registry", fig)
		}
		sp := s.Spec(scaleName, seed)
		// Fold the -m/-steps/-repeats overrides into explicit spec
		// fields, so the dumped file reproduces this exact invocation.
		preset, err := scaleByName(scaleName)
		if err != nil {
			return sops.Spec{}, err
		}
		if sc.M != preset.M || sc.Steps != preset.Steps {
			sp.Ensemble = &sops.SpecEnsemble{}
			if sc.M != preset.M {
				sp.Ensemble.M = sc.M
			}
			if sc.Steps != preset.Steps {
				sp.Ensemble.Steps = sc.Steps
			}
		}
		if sc.Repeats != preset.Repeats {
			sp.Sweep = &sops.SpecSweep{Repeats: sc.Repeats}
		}
		return sp, nil
	default:
		return sops.Spec{}, fmt.Errorf("figure %q has no declarative spec form (snapshot and force-curve figures are bespoke drivers)", fig)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sopfigures:", err)
	os.Exit(1)
}

type runner struct {
	sc   experiment.Scale
	seed uint64
	out  string
	ctx  context.Context
	sw   experiment.Sweeper
}

func (r runner) run(fig string) error {
	fmt.Printf("== %s ==\n", fig)
	switch fig {
	case "fig1":
		cfgp, err := experiment.Fig1Example(r.seed)
		if err != nil {
			return err
		}
		return r.saveConfigs(fig, []experiment.TypedConfig{*cfgp})
	case "fig2":
		return r.saveFigure(experiment.Fig2ForceCurves())
	case "fig3":
		cfgs, err := experiment.Fig3Equilibria(r.seed)
		if err != nil {
			return err
		}
		return r.saveConfigs(fig, cfgs)
	case "fig4":
		res, err := experiment.Fig4PipelineOf(r.sc, r.seed).RunCtx(r.ctx)
		if err != nil {
			return err
		}
		fd := resultFigure("fig4", "Multi-information vs time (n=50, l=3, rc=5, F1)", res.Times, res.MI)
		fmt.Printf("equilibrated fraction: %.2f\n", res.EquilibratedFraction)
		return r.saveFigure(fd)
	case "fig5":
		res, err := experiment.Fig5PipelineOf(r.sc, r.seed).RunCtx(r.ctx)
		if err != nil {
			return err
		}
		return r.saveFigure(resultFigure("fig5",
			"Multi-information vs time (20 particles, one type, F1, rc > 2r)", res.Times, res.MI))
	case "fig6":
		res, err := experiment.Fig6Pipeline(r.sc, r.seed)
		if err != nil {
			return err
		}
		snaps := experiment.Fig6Snapshots(res, []int{60, res.Times[len(res.Times)-1]}, 4)
		return r.saveConfigs(fig, snaps)
	case "fig7":
		res, err := experiment.Fig5PipelineOf(r.sc, r.seed).RunCtx(r.ctx)
		if err != nil {
			return err
		}
		inner, outer := experiment.RingRadialStats(res)
		fmt.Printf("inner-ring scatter %.3f vs outer-ring scatter %.3f (paper: inner ≫ outer)\n", inner, outer)
		ov := experiment.Fig7AlignedOverlay(res)
		return r.saveConfigs(fig, []experiment.TypedConfig{*ov})
	case "fig8":
		fd, err := experiment.Fig8TypeCountSweep(r.ctx, r.sw, r.sc, 10, r.seed)
		if err != nil {
			return err
		}
		return r.saveFigure(fd)
	case "fig9":
		fd, err := experiment.Fig9CutoffSweep(r.ctx, r.sw, r.sc, r.seed)
		if err != nil {
			return err
		}
		return r.saveFigure(fd)
	case "fig10":
		fd, err := experiment.Fig10TypesVsCutoff(r.ctx, r.sw, r.sc, r.seed)
		if err != nil {
			return err
		}
		return r.saveFigure(fd)
	case "fig11":
		fd, err := experiment.Fig11Decomposition(r.sc, r.seed)
		if err != nil {
			return err
		}
		return r.saveFigure(fd)
	case "fig12":
		cfgs, err := experiment.Fig12EmergentStructures(r.seed)
		if err != nil {
			return err
		}
		return r.saveConfigs(fig, cfgs)
	case "estimators":
		table, err := experiment.EstimatorComparison(r.ctx, r.sw, 5, 200, max(2, r.sc.Repeats), 0.6, 4, r.seed)
		if err != nil {
			return err
		}
		fmt.Print(table.String())
		return os.WriteFile(filepath.Join(r.out, "estimators.txt"), []byte(table.String()), 0o644)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func resultFigure(id, title string, times []int, mi []float64) *experiment.FigureData {
	xs := make([]float64, len(times))
	for i, t := range times {
		xs[i] = float64(t)
	}
	return &experiment.FigureData{
		ID:     id,
		Title:  title,
		Series: []experiment.Series{{Name: "I(W1..Wn)", X: xs, Y: mi}},
	}
}

func (r runner) saveFigure(fd *experiment.FigureData) error {
	names := make([]string, len(fd.Series))
	xs := make([][]float64, len(fd.Series))
	ys := make([][]float64, len(fd.Series))
	chart := &plot.Chart{Title: fd.Title, XLabel: "t", YLabel: "bits"}
	for i, s := range fd.Series {
		names[i] = s.Name
		xs[i] = s.X
		ys[i] = s.Y
		chart.Add(s.Name, s.X, s.Y)
	}
	fmt.Print(chart.Render(72, 18))
	if fd.Notes != "" {
		fmt.Println("notes:", fd.Notes)
	}

	csvPath := filepath.Join(r.out, fd.ID+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := plot.WriteSeriesCSV(f, names, xs, ys); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	svg := plot.SVGLines(fd.Title, names, xs, ys, 560)
	if err := os.WriteFile(filepath.Join(r.out, fd.ID+".svg"), []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", csvPath, filepath.Join(r.out, fd.ID+".svg"))
	return nil
}

func (r runner) saveConfigs(fig string, cfgs []experiment.TypedConfig) error {
	for i, c := range cfgs {
		name := fmt.Sprintf("%s-%02d.svg", fig, i)
		svg := plot.SVGScatter(c.Label, c.Pos, c.Types, 480)
		if err := os.WriteFile(filepath.Join(r.out, name), []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s, %d particles)\n", filepath.Join(r.out, name), c.Label, len(c.Pos))
	}
	return nil
}
