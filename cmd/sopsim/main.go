// Command sopsim runs a single particle simulation and reports its
// trajectory summary: terminal classification (equilibrium, limit cycle, or
// still evolving), net-force trace, and an ASCII/SVG rendering of the final
// configuration. It is the quickest way to explore interaction matrices
// before committing to a full measurement pipeline.
//
// Usage:
//
//	sopsim [-n 30] [-types 3] [-force F1|F2] [-rc 5] [-steps 250]
//	       [-seed 1] [-svg out.svg] [-csv out.csv]
//	sopsim -spec file.json [-steps 250]    # simulate a spec's sim block
//	sopsim [flags] -dump-spec              # print the resolved spec JSON
//
// The interaction matrices are drawn randomly from the paper's ranges
// (F1: k ∈ [1,10), r ∈ [1,5); F2: σ = 1, τ ∈ [1,10)); pass -seed to vary.
// Every invocation resolves to a declarative sops.Spec and is validated
// through Spec.Validate before anything runs — the same rules the library
// enforces — and -dump-spec captures the drawn matrices, so an
// interesting random draw can be pinned to a file and replayed or handed
// to the measurement pipeline.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	sops "repro"
	"repro/internal/forces"
	"repro/internal/plot"
	"repro/internal/rngx"
	"repro/internal/vec"
)

func main() {
	var (
		n         = flag.Int("n", 30, "number of particles")
		l         = flag.Int("types", 3, "number of particle types")
		forceName = flag.String("force", "F1", "force-scaling function: F1 or F2")
		rc        = flag.Float64("rc", 5, "cut-off radius (0 = infinite)")
		steps     = flag.Int("steps", 250, "integration steps")
		seed      = flag.Uint64("seed", 1, "random seed")
		svgPath   = flag.String("svg", "", "write final configuration as SVG")
		csvPath   = flag.String("csv", "", "write net-force trace as CSV")
		specFile  = flag.String("spec", "", "simulate the sim block of a spec JSON file instead of the flags")
		dumpSpec  = flag.Bool("dump-spec", false, "print the resolved spec JSON (with the drawn matrices) and exit")
	)
	flag.Parse()

	sp, err := resolveSpec(*specFile, *n, *l, *forceName, *rc, *seed)
	if err != nil {
		fatal(err)
	}
	// The single validation gate: flag-built and file-loaded specs are
	// held to exactly the rules the library enforces.
	if err := sp.Validate(); err != nil {
		fatal(err)
	}
	if *dumpSpec {
		b, err := sp.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(b)
		return
	}

	session := sops.NewSession()
	sys, err := session.System(sp)
	if err != nil {
		fatal(err)
	}

	detector := &sops.CycleDetector{Tolerance: 0.15, MaxPeriod: 40}
	var times, netForces []float64
	equilibriumAt := -1
	for k := 0; k < *steps; k++ {
		sys.Step()
		times = append(times, float64(sys.Time()))
		netForces = append(netForces, sys.NetForce())
		detector.Observe(sys.PositionsRef())
		if equilibriumAt < 0 && sys.InEquilibrium() {
			equilibriumAt = sys.Time()
		}
	}

	cfg := sys.Config()
	fmt.Printf("force %s with %d types, %d particles, rc=%g, %d steps\n",
		cfg.Force.Name(), cfg.Force.Types(), cfg.N, cfg.Cutoff, *steps)
	fmt.Printf("final net force: %.3f (threshold %.3f)\n",
		sys.NetForce(), cfg.EquilibriumThreshold)
	switch {
	case equilibriumAt >= 0:
		fmt.Printf("terminal state: equilibrium (first reached at step %d)\n", equilibriumAt)
	case detector.Period() > 1:
		fmt.Printf("terminal state: limit cycle, period %d steps\n", detector.Period())
	case detector.Period() == 1:
		fmt.Println("terminal state: stationary (recurrence, force criterion not met)")
	default:
		fmt.Println("terminal state: still evolving (paper Sec. 6: likely slow expansion)")
	}

	chart := &plot.Chart{Title: "net deterministic force over time", XLabel: "t", YLabel: "sum |F|"}
	chart.Add("netforce", times, netForces)
	fmt.Print(chart.Render(72, 12))
	fmt.Print(renderASCII(sys.Positions(), sys.Types()))

	if *svgPath != "" {
		svg := plot.SVGScatter("sopsim final configuration", sys.Positions(), sys.Types(), 480)
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *svgPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := plot.WriteSeriesCSV(f, []string{"netforce"}, [][]float64{times}, [][]float64{netForces}); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sopsim:", err)
	os.Exit(1)
}

// resolveSpec builds the invocation's declarative spec: from a file, or
// from the flags with the random interaction matrices drawn and pinned
// (so -dump-spec output replays this exact system).
func resolveSpec(specFile string, n, l int, forceName string, rc float64, seed uint64) (sops.Spec, error) {
	if specFile != "" {
		sp, err := sops.LoadSpec(specFile)
		if err != nil {
			return sops.Spec{}, err
		}
		if sp.Sim == nil {
			return sops.Spec{}, fmt.Errorf("spec %s has no sim block to simulate", specFile)
		}
		return sp, nil
	}
	rng := rngx.New(seed)
	var force forces.Scaling
	switch strings.ToUpper(forceName) {
	case "F1":
		force = forces.RandomF1(l, 1, 10, 1, 5, rng)
	case "F2":
		force = forces.RandomF2(l, 1, 10, 1, 10, rng)
	default:
		return sops.Spec{}, fmt.Errorf("unknown force %q (want F1 or F2)", forceName)
	}
	cutoff := rc
	if cutoff == 0 {
		cutoff = math.Inf(1)
	}
	return sops.NewSpec("sopsim",
		sops.WithSeed(seed),
		sops.WithSim(sops.SimConfig{N: n, Force: force, Cutoff: cutoff}),
	)
}

// renderASCII draws the typed configuration on a character grid, digits
// being particle types — the terminal equivalent of the paper's figures.
func renderASCII(pos []vec.Vec2, types []int) string {
	const w, h = 64, 24
	min, max := vec.BoundingBox(pos)
	spanX := math.Max(max.X-min.X, 1e-9)
	spanY := math.Max(max.Y-min.Y, 1e-9)
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for i, p := range pos {
		c := int((p.X - min.X) / spanX * float64(w-1))
		r := int((max.Y - p.Y) / spanY * float64(h-1))
		grid[r][c] = byte('0' + types[i]%10)
	}
	var b strings.Builder
	b.WriteString("final configuration (digits = types):\n")
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}
