// Command sopsim runs a single particle simulation and reports its
// trajectory summary: terminal classification (equilibrium, limit cycle, or
// still evolving), net-force trace, and an ASCII/SVG rendering of the final
// configuration. It is the quickest way to explore interaction matrices
// before committing to a full measurement pipeline.
//
// Usage:
//
//	sopsim [-n 30] [-types 3] [-force F1|F2] [-rc 5] [-steps 250]
//	       [-seed 1] [-svg out.svg] [-csv out.csv]
//
// The interaction matrices are drawn randomly from the paper's ranges
// (F1: k ∈ [1,10), r ∈ [1,5); F2: σ = 1, τ ∈ [1,10)); pass -seed to vary.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/forces"
	"repro/internal/plot"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/vec"
)

func main() {
	var (
		n         = flag.Int("n", 30, "number of particles")
		l         = flag.Int("types", 3, "number of particle types")
		forceName = flag.String("force", "F1", "force-scaling function: F1 or F2")
		rc        = flag.Float64("rc", 5, "cut-off radius (0 = infinite)")
		steps     = flag.Int("steps", 250, "integration steps")
		seed      = flag.Uint64("seed", 1, "random seed")
		svgPath   = flag.String("svg", "", "write final configuration as SVG")
		csvPath   = flag.String("csv", "", "write net-force trace as CSV")
	)
	flag.Parse()

	rng := rngx.New(*seed)
	var force forces.Scaling
	switch strings.ToUpper(*forceName) {
	case "F1":
		force = forces.RandomF1(*l, 1, 10, 1, 5, rng)
	case "F2":
		force = forces.RandomF2(*l, 1, 10, 1, 10, rng)
	default:
		fmt.Fprintf(os.Stderr, "sopsim: unknown force %q\n", *forceName)
		os.Exit(2)
	}
	cutoff := *rc
	if cutoff == 0 {
		cutoff = math.Inf(1)
	}
	cfg := sim.Config{N: *n, Force: force, Cutoff: cutoff}
	sys, err := sim.New(cfg, rngx.Split(*seed, 1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sopsim:", err)
		os.Exit(1)
	}

	detector := &sim.CycleDetector{Tolerance: 0.15, MaxPeriod: 40}
	var times, netForces []float64
	equilibriumAt := -1
	for k := 0; k < *steps; k++ {
		sys.Step()
		times = append(times, float64(sys.Time()))
		netForces = append(netForces, sys.NetForce())
		detector.Observe(sys.PositionsRef())
		if equilibriumAt < 0 && sys.InEquilibrium() {
			equilibriumAt = sys.Time()
		}
	}

	fmt.Printf("force %s with %d types, %d particles, rc=%g, %d steps\n",
		force.Name(), *l, *n, cutoff, *steps)
	fmt.Printf("final net force: %.3f (threshold %.3f)\n",
		sys.NetForce(), sys.Config().EquilibriumThreshold)
	switch {
	case equilibriumAt >= 0:
		fmt.Printf("terminal state: equilibrium (first reached at step %d)\n", equilibriumAt)
	case detector.Period() > 1:
		fmt.Printf("terminal state: limit cycle, period %d steps\n", detector.Period())
	case detector.Period() == 1:
		fmt.Println("terminal state: stationary (recurrence, force criterion not met)")
	default:
		fmt.Println("terminal state: still evolving (paper Sec. 6: likely slow expansion)")
	}

	chart := &plot.Chart{Title: "net deterministic force over time", XLabel: "t", YLabel: "sum |F|"}
	chart.Add("netforce", times, netForces)
	fmt.Print(chart.Render(72, 12))
	fmt.Print(renderASCII(sys.Positions(), sys.Types()))

	if *svgPath != "" {
		svg := plot.SVGScatter("sopsim final configuration", sys.Positions(), sys.Types(), 480)
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sopsim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *svgPath)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sopsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := plot.WriteSeriesCSV(f, []string{"netforce"}, [][]float64{times}, [][]float64{netForces}); err != nil {
			fmt.Fprintln(os.Stderr, "sopsim:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}

// renderASCII draws the typed configuration on a character grid, digits
// being particle types — the terminal equivalent of the paper's figures.
func renderASCII(pos []vec.Vec2, types []int) string {
	const w, h = 64, 24
	min, max := vec.BoundingBox(pos)
	spanX := math.Max(max.X-min.X, 1e-9)
	spanY := math.Max(max.Y-min.Y, 1e-9)
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for i, p := range pos {
		c := int((p.X - min.X) / spanX * float64(w-1))
		r := int((max.Y - p.Y) / spanY * float64(h-1))
		grid[r][c] = byte('0' + types[i]%10)
	}
	var b strings.Builder
	b.WriteString("final configuration (digits = types):\n")
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}
