package main

import (
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestRenderASCIIPlacesAllTypes(t *testing.T) {
	pos := []vec.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	types := []int{0, 1, 2, 3}
	out := renderASCII(pos, types)
	for _, digit := range []string{"0", "1", "2", "3"} {
		if !strings.Contains(out, digit) {
			t.Errorf("rendered grid missing type %s:\n%s", digit, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 25 { // header + 24 rows
		t.Errorf("grid has %d lines", len(lines))
	}
}

func TestRenderASCIIDegenerateCloud(t *testing.T) {
	// All points coincident: must not divide by zero.
	pos := []vec.Vec2{{X: 1, Y: 1}, {X: 1, Y: 1}}
	out := renderASCII(pos, []int{0, 0})
	if !strings.Contains(out, "0") {
		t.Error("coincident points not rendered")
	}
}

func TestRenderASCIITypeWraparound(t *testing.T) {
	pos := []vec.Vec2{{X: 0, Y: 0}, {X: 5, Y: 5}}
	out := renderASCII(pos, []int{12, 7}) // 12 renders as digit 2
	if !strings.Contains(out, "2") || !strings.Contains(out, "7") {
		t.Errorf("type digits wrong:\n%s", out)
	}
}

// TestResolveSpecValidation: flag-built specs pass through Spec.Validate,
// so the CLI rejects exactly the configs the library rejects.
func TestResolveSpecValidation(t *testing.T) {
	if _, err := resolveSpec("", 30, 3, "F3", 5, 1); err == nil {
		t.Fatal("unknown force family accepted")
	}
	if _, err := resolveSpec("", 0, 3, "F1", 5, 1); err == nil {
		t.Fatal("n=0 accepted (previously built an invalid config unvalidated)")
	}
	if _, err := resolveSpec("", -5, 3, "F1", 5, 1); err == nil {
		t.Fatal("negative n accepted")
	}
	sp, err := resolveSpec("", 30, 3, "F1", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Sim == nil || sp.Sim.N != 30 || sp.Sim.Force == nil {
		t.Fatalf("spec = %+v", sp)
	}
	if sp.Sim.Cutoff != 0 {
		t.Fatalf("rc=0 (infinite) should serialise as omitted, got %g", sp.Sim.Cutoff)
	}
	// The drawn matrices are pinned: the same seed resolves to the same
	// spec, so -dump-spec output replays the exact system.
	again, err := resolveSpec("", 30, 3, "F1", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := sp.MarshalIndent()
	b2, _ := again.MarshalIndent()
	if string(b1) != string(b2) {
		t.Fatal("same seed produced different specs")
	}
}
