package main

import (
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestRenderASCIIPlacesAllTypes(t *testing.T) {
	pos := []vec.Vec2{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	types := []int{0, 1, 2, 3}
	out := renderASCII(pos, types)
	for _, digit := range []string{"0", "1", "2", "3"} {
		if !strings.Contains(out, digit) {
			t.Errorf("rendered grid missing type %s:\n%s", digit, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 25 { // header + 24 rows
		t.Errorf("grid has %d lines", len(lines))
	}
}

func TestRenderASCIIDegenerateCloud(t *testing.T) {
	// All points coincident: must not divide by zero.
	pos := []vec.Vec2{{X: 1, Y: 1}, {X: 1, Y: 1}}
	out := renderASCII(pos, []int{0, 0})
	if !strings.Contains(out, "0") {
		t.Error("coincident points not rendered")
	}
}

func TestRenderASCIITypeWraparound(t *testing.T) {
	pos := []vec.Vec2{{X: 0, Y: 0}, {X: 5, Y: 5}}
	out := renderASCII(pos, []int{12, 7}) // 12 renders as digit 2
	if !strings.Contains(out, "2") || !strings.Contains(out, "7") {
		t.Errorf("type digits wrong:\n%s", out)
	}
}
