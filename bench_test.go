// Benchmark harness: one benchmark per figure of the paper (Figs. 1–12)
// plus the Sec. 5.3 estimator comparison and the design-choice ablations
// called out in DESIGN.md. Figure benchmarks run the same drivers as
// cmd/sopfigures at the reduced TestScale, so `go test -bench=.` both
// exercises every experiment end to end and measures its cost; the shape
// results at full scale are recorded in EXPERIMENTS.md.
package sops_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/align"
	"repro/internal/experiment"
	"repro/internal/forces"
	"repro/internal/infotheory"
	"repro/internal/mathx"
	"repro/internal/observer"
	"repro/internal/rngx"
	"repro/internal/sim"
	"repro/internal/spatial"
	"repro/internal/vec"
)

const benchSeed = 2012

func benchScale() experiment.Scale { return experiment.TestScale() }

// --- one benchmark per paper figure ----------------------------------------

func BenchmarkFig01ExampleConfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig1Example(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02ForceCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fd := experiment.Fig2ForceCurves()
		if len(fd.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFig03Equilibria(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig3Equilibria(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04MultiInformationTimeSeries(b *testing.B) {
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig4Pipeline(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.DeltaI(), "ΔI-bits")
}

func BenchmarkFig05SingleTypeRings(b *testing.B) {
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig5SingleTypeRings(benchScale(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.DeltaI(), "ΔI-bits")
}

func BenchmarkFig06SampleSnapshots(b *testing.B) {
	res, err := experiment.Fig6Pipeline(benchScale(), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snaps := experiment.Fig6Snapshots(res, []int{0, res.Times[len(res.Times)-1]}, 4)
		if len(snaps) == 0 {
			b.Fatal("no snapshots")
		}
	}
}

func BenchmarkFig07AlignedOverlay(b *testing.B) {
	res, err := experiment.Fig5SingleTypeRings(benchScale(), benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ov := experiment.Fig7AlignedOverlay(res)
		if len(ov.Pos) == 0 {
			b.Fatal("empty overlay")
		}
	}
}

func BenchmarkFig08TypeCountSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig8TypeCountSweep(context.Background(), nil, benchScale(), 4, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig09CutoffSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9CutoffSweep(context.Background(), nil, benchScale(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10TypesVsCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig10TypesVsCutoff(context.Background(), nil, benchScale(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Decomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig11Decomposition(benchScale(), benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12EmergentStructures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig12EmergentStructures(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatorComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := experiment.EstimatorComparison(context.Background(), nil, 4, 100, 2, 0.6, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- pipeline memory model ---------------------------------------------------

// legacyBatchPipeline reproduces the seed's fully-materialised measurement
// data flow through the public API: run and retain the whole ensemble, then
// build a complete aligned copy (serial per-step loop), then package every
// step into datasets, then estimate — three M×T×N transcripts live at peak.
// It is the baseline the streamed pipeline is benchmarked against.
func legacyBatchPipeline(ec sim.EnsembleConfig) ([]float64, error) {
	ens, err := sim.RunEnsemble(ec)
	if err != nil {
		return nil, err
	}
	times := ens.Times()
	aligned := make([][][]vec.Vec2, len(times))
	for t := range times {
		af, err := align.AlignFrame(ens.FramesAt(t), ens.Types, align.FrameOptions{})
		if err != nil {
			return nil, err
		}
		aligned[t] = af
	}
	datasets := make([]*infotheory.Dataset, len(times))
	for t := range times {
		datasets[t] = infotheory.FromFrames(aligned[t])
	}
	mi := make([]float64, len(times))
	for t := range times {
		mi[t] = infotheory.MultiInfoKSGVariant(datasets[t], experiment.DefaultKSGK, infotheory.KSG2)
	}
	return mi, nil
}

// BenchmarkPipelineMemory contrasts the streamed measurement pipeline with
// the retained variants on the Fig. 4 system. Run with -benchmem: the
// acceptance bar of the streaming refactor is streamed B/op at least 2×
// below the batch baseline (in practice the gap is far larger, since the
// batch path also re-allocates all ICP scratch per frame). CI emits this
// benchmark's output as a build artifact (BENCH trajectory).
func BenchmarkPipelineMemory(b *testing.B) {
	// TestScale's simulation budget, but a denser recording grid: the
	// transcripts whose retention the two modes disagree about scale with
	// the number of recorded frames, so a realistic MI-curve grid (11
	// frames, as QuickScale produces) is the representative workload.
	sc := benchScale()
	pipeline := func() experiment.Pipeline {
		return experiment.Pipeline{
			Name: "bench",
			Ensemble: sim.EnsembleConfig{
				Sim:         experiment.Fig4Params(),
				M:           sc.M,
				Steps:       sc.Steps,
				RecordEvery: sc.Steps / 10,
				Seed:        benchSeed,
			},
		}
	}
	b.Run("streamed", func(b *testing.B) {
		b.ReportAllocs()
		var last *experiment.Result
		for i := 0; i < b.N; i++ {
			res, err := pipeline().Run()
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.FinalMI(), "final-bits")
	})
	b.Run("streamed-retained", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := pipeline()
			p.RetainEnsemble = true
			if _, err := p.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-legacy", func(b *testing.B) {
		b.ReportAllocs()
		var mi []float64
		for i := 0; i < b.N; i++ {
			var err error
			if mi, err = legacyBatchPipeline(pipeline().Ensemble); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(mi[len(mi)-1], "final-bits")
	})
}

// --- ablations (design choices from DESIGN.md) ------------------------------

// BenchmarkAblationNeighbourStrategies compares the cell-list grid against
// the O(n²) sweep for a spread-out collective with a small cut-off — the
// regime where the simulator auto-selects the grid.
func BenchmarkAblationNeighbourStrategies(b *testing.B) {
	rng := rngx.New(1)
	n := 512
	pts := make([]vec.Vec2, n)
	for i := range pts {
		x, y := rng.UniformDisc(60)
		pts[i] = vec.Vec2{X: x, Y: y}
	}
	const radius = 3.0
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := spatial.NewGrid(pts, radius)
			count := 0
			for p := range pts {
				g.ForNeighbors(p, radius, func(int) { count++ })
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			for p := range pts {
				count += len(spatial.BruteNeighbors(pts, p, radius))
			}
		}
	})
}

// BenchmarkAblationKSGVariants times the three KSG formulations on the same
// dataset and reports each one's deviation from the analytic Gaussian truth
// — quantifying why the bias-corrected KSG-2 is the default rather than the
// formula exactly as printed in the paper.
func BenchmarkAblationKSGVariants(b *testing.B) {
	nVars, m, rho := 6, 300, 0.6
	truth := experiment.GaussianTrueMI(nVars, rho)
	ds := experiment.SampleEquicorrelatedGaussians(m, nVars, rho, rngx.New(3))
	for _, variant := range []infotheory.KSGVariant{infotheory.KSGPaper, infotheory.KSG1, infotheory.KSG2} {
		b.Run(variant.String(), func(b *testing.B) {
			var est float64
			for i := 0; i < b.N; i++ {
				est = infotheory.MultiInfoKSGVariant(ds, 4, variant)
			}
			b.ReportMetric(est-truth, "bias-bits")
		})
	}
}

// BenchmarkAblationICPNearestNeighbour compares the k-d tree correspondence
// search against the linear scan inside ICP at the paper's collective sizes.
func BenchmarkAblationICPNearestNeighbour(b *testing.B) {
	rng := rngx.New(5)
	for _, n := range []int{20, 120} {
		types := sim.TypesRoundRobin(n, 3)
		ref := make([]vec.Vec2, n)
		for i := range ref {
			x, y := rng.UniformDisc(8)
			ref[i] = vec.Vec2{X: x, Y: y}
		}
		moving := align.Rigid{Theta: 1.1, T: vec.Vec2{X: 4, Y: -2}}.ApplyAll(ref)
		for _, brute := range []bool{false, true} {
			name := "kdtree"
			if brute {
				name = "brute"
			}
			b.Run(nameN(name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := align.ICP(moving, ref, types, align.Options{BruteForceNN: brute}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func nameN(name string, n int) string {
	return name + "/n=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationKMeansReduction measures the cost and the estimate shift
// of the Sec. 5.3.1 cluster-mean reduction on the Fig. 4 system.
func BenchmarkAblationKMeansReduction(b *testing.B) {
	sc := benchScale()
	b.Run("full", func(b *testing.B) {
		var res *experiment.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = experiment.Fig4Pipeline(sc, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.FinalMI(), "final-bits")
	})
	b.Run("kmeans-3", func(b *testing.B) {
		var res *experiment.Result
		var err error
		for i := 0; i < b.N; i++ {
			res, err = experiment.Fig4PipelineReduced(sc, benchSeed, 3)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(res.FinalMI(), "final-bits")
	})
}

// BenchmarkAblationAlignmentReference compares the cheap first-sample
// anchor against the medoid anchor.
func BenchmarkAblationAlignmentReference(b *testing.B) {
	ens, err := sim.RunEnsemble(sim.EnsembleConfig{
		Sim:         experiment.Fig5Params(),
		M:           32,
		Steps:       40,
		RecordEvery: 40,
		Seed:        benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, ref := range []align.Reference{align.RefFirst, align.RefMedoid} {
		name := "first"
		if ref == align.RefMedoid {
			name = "medoid"
		}
		b.Run(name, func(b *testing.B) {
			var obs *observer.Observers
			for i := 0; i < b.N; i++ {
				obs, err = observer.FromEnsemble(ens, observer.Config{
					Align: align.FrameOptions{Reference: ref},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			last := obs.Datasets[len(obs.Datasets)-1]
			b.ReportMetric(infotheory.MultiInfoKSGVariant(last, 4, infotheory.KSG2), "final-bits")
		})
	}
}

// --- micro-benchmarks of the hot paths --------------------------------------

func BenchmarkForceEvalF1(b *testing.B) {
	f := forces.MustF1(forces.ConstantMatrix(3, 2), forces.ConstantMatrix(3, 2.5))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Eval(i%3, (i+1)%3, 1.5+float64(i%7))
	}
	_ = sink
}

func BenchmarkForceEvalF2(b *testing.B) {
	f := forces.MustF2(forces.ConstantMatrix(3, 2), forces.ConstantMatrix(3, 1), forces.ConstantMatrix(3, 5))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += f.Eval(i%3, (i+1)%3, 1.5+float64(i%7))
	}
	_ = sink
}

// spreadSystem builds a system whose spread keeps the dense-grid strategy
// selected (extent ≫ 3·rc), the simulator's neighbour-search hot path.
func spreadSystem(b *testing.B, n, workers int) *sim.System {
	b.Helper()
	cfg := sim.Config{
		N:       n,
		Force:   forces.MustF1(forces.ConstantMatrix(3, 1), forces.ConstantMatrix(3, 2)),
		Cutoff:  3,
		Workers: workers,
	}
	rng := rngx.New(17)
	pos := make([]vec.Vec2, n)
	for i := range pos {
		x, y := rng.UniformDisc(math.Sqrt(float64(n)) * 2) // ~constant density
		pos[i] = vec.Vec2{X: x, Y: y}
	}
	sys, err := sim.NewFromPositions(cfg, pos, rngx.New(18))
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkStep measures the steady-state integrator step on the dense-grid
// path. With ReportAllocs it also asserts the headline property of the
// persistent grid: after warm-up, a step allocates nothing (serial and
// Workers=1 modes; Workers>1 pays a small per-step goroutine fan-out).
func BenchmarkStep(b *testing.B) {
	for _, n := range []int{100, 300, 1000} {
		for _, workers := range []int{0, 1, 4} {
			b.Run("n="+itoa(n)+"/workers="+itoa(workers), func(b *testing.B) {
				sys := spreadSystem(b, n, workers)
				sys.Run(2) // warm up grid and scratch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.Step()
				}
			})
		}
	}
}

// BenchmarkGridRebuild compares the seed's per-step strategy (build a fresh
// map-backed Grid every call) against the persistent DenseGrid's recycled
// counting-sort Rebuild, including one query sweep each, at the paper's
// collective sizes.
func BenchmarkGridRebuild(b *testing.B) {
	const radius = 3.0
	for _, n := range []int{100, 1000} {
		rng := rngx.New(19)
		pts := make([]vec.Vec2, n)
		for i := range pts {
			x, y := rng.UniformDisc(math.Sqrt(float64(n)) * 2)
			pts[i] = vec.Vec2{X: x, Y: y}
		}
		b.Run("map/n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			count := 0
			for i := 0; i < b.N; i++ {
				g := spatial.NewGrid(pts, radius)
				for p := range pts {
					g.ForNeighbors(p, radius, func(int) { count++ })
				}
			}
		})
		b.Run("dense/n="+itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			g := spatial.NewDenseGrid(radius)
			buf := make([]int32, 0, 64)
			b.ResetTimer()
			count := 0
			for i := 0; i < b.N; i++ {
				g.Rebuild(pts)
				for p := range pts {
					buf = g.AppendNeighbors(buf[:0], p, radius)
					count += len(buf)
				}
			}
		})
	}
}

func BenchmarkSimStep(b *testing.B) {
	for _, n := range []int{20, 50, 120} {
		b.Run("n="+itoa(n), func(b *testing.B) {
			cfg := sim.Config{
				N:      n,
				Force:  forces.MustF1(forces.ConstantMatrix(3, 1), forces.ConstantMatrix(3, 2)),
				Cutoff: 5,
			}
			sys, err := sim.New(cfg, rngx.New(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Step()
			}
		})
	}
}

func BenchmarkKSGEstimator(b *testing.B) {
	for _, m := range []int{100, 500} {
		ds := experiment.SampleEquicorrelatedGaussians(m, 10, 0.5, rngx.New(7))
		b.Run("m="+itoa(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				infotheory.MultiInfoKSGVariant(ds, 4, infotheory.KSG2)
			}
		})
	}
}

func BenchmarkKernelEstimator(b *testing.B) {
	ds := experiment.SampleEquicorrelatedGaussians(200, 10, 0.5, rngx.New(9))
	for i := 0; i < b.N; i++ {
		infotheory.MultiInfoKernel(ds)
	}
}

func BenchmarkBinnedEstimator(b *testing.B) {
	ds := experiment.SampleEquicorrelatedGaussians(200, 10, 0.5, rngx.New(11))
	for i := 0; i < b.N; i++ {
		infotheory.MultiInfoBinned(ds, infotheory.BinnedOptions{})
	}
}

func BenchmarkICPAlign(b *testing.B) {
	rng := rngx.New(13)
	n := 50
	types := sim.TypesRoundRobin(n, 3)
	ref := make([]vec.Vec2, n)
	for i := range ref {
		x, y := rng.UniformDisc(6)
		ref[i] = vec.Vec2{X: x, Y: y}
	}
	moving := align.Rigid{Theta: 2.2, T: vec.Vec2{X: 9, Y: 1}}.ApplyAll(ref)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.ICP(moving, ref, types, align.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDigamma(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += mathx.Digamma(float64(i%1000) + 0.5)
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN")
	}
}
